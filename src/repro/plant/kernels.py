"""Fused per-unit step kernels for the flowsheet's batched backends.

``Flowsheet(backend="auto")`` swaps each unit's object-building
``step()`` for a closure compiled here: stream hops become raw
``(molar_flow, fractions, temperature, pressure)`` tuples flowing
between :class:`~repro.plant.ports.StreamPort` cells, so steady-state
stepping allocates no ``Stream``/``Composition`` objects at all.  With
``backend="np"`` the species vectors are numpy float64 arrays instead
of python lists (struct-of-arrays unit state).

Bit-identity contract: every kernel replays its unit's ``step()``
float operations in the exact same order -- the sequential
accumulations, the ``total == 1.0`` divide-skip of
``Composition._normalized``, the re-normalization hidden inside
``Stream.copy()``, down to ``a * b / c`` association.  numpy enters
only through elementwise float64 ufuncs, which are IEEE-identical to
the corresponding scalar ops; *reductions* stay sequential python adds
(numpy's pairwise ``sum`` would round differently).  The golden
"plant" digest and the backend-conformance tests hold every backend to
the scalar reference.
"""

from __future__ import annotations

from repro.plant.components import N_SPECIES, _PURE_C1
from repro.plant.ports import StreamPort
from repro.plant.thermo import HEAT_CAPACITY_J_PER_MOL_K, _split_fractions
from repro.plant.units.column import _BASE_RECOVERY, _C3_I, _IC4_I, _NC4_I

# Composition({"C3": 1.0}).fractions, precomputed (total is exactly 1.0,
# so the constructor adopts the vector unchanged).
_C3_PURE: list[float] = [1.0 if i == _C3_I else 0.0
                         for i in range(N_SPECIES)]

# The scalarized fast paths unroll species vectors into locals; they
# only apply at the stock species count.
_SEVEN = N_SPECIES == 7


def _read(source):
    """Raw ``(mf, fractions, t, p)`` of a stream source; ports skip
    materialization, plain callables unpack the stream they return."""
    if type(source) is StreamPort:
        s = source.stream
        if s is None:
            return source.mf, source.fr, source.t, source.p
    else:
        s = source()
    return (s.molar_flow, s.composition.fractions, s.temperature_c,
            s.pressure_kpa)


def _renorm(fractions) -> list[float]:
    """``Stream.copy()``'s composition re-normalization on a raw
    fraction vector: bit-for-bit the
    ``Composition._normalized(fr, copy=True)`` path.  Kernels never
    mutate fraction vectors in place (each step builds fresh lists), so
    the already-normalized case can return the input aliased instead of
    copied -- same values, one allocation less."""
    total = 0.0
    for v in fractions:
        total += v
    if total == 1.0:
        return fractions
    return [v / total for v in fractions]


def _mix_raw(live):
    """``Stream.mix`` on raw tuples; ``live`` holds the streams with
    positive flow, in order, and must be non-empty.

    The one- and two-stream cases (every mixer in the gas plant) are
    unrolled; the ``0.0 +`` seeds reproduce the generic accumulator's
    first iteration exactly (flows and per-stream temperatures are
    never ``-0.0``, but the seed keeps the float ops literally equal).
    """
    n = len(live)
    if n == 1:
        mf, fractions, t, p = live[0]
        total = 0.0 + mf
        temp = 0.0 + t * mf / total
        if _SEVEN:
            f0, f1, f2, f3, f4, f5, f6 = fractions
            g0 = 0.0 + mf * f0
            g1 = 0.0 + mf * f1
            g2 = 0.0 + mf * f2
            g3 = 0.0 + mf * f3
            g4 = 0.0 + mf * f4
            g5 = 0.0 + mf * f5
            g6 = 0.0 + mf * f6
            ftotal = 0.0 + g0 + g1 + g2 + g3 + g4 + g5 + g6
            if ftotal != 1.0:
                flows = [g0 / ftotal, g1 / ftotal, g2 / ftotal,
                         g3 / ftotal, g4 / ftotal, g5 / ftotal,
                         g6 / ftotal]
            else:
                flows = [g0, g1, g2, g3, g4, g5, g6]
            return total, flows, temp, p
        flows = [0.0 + mf * f for f in fractions]
        ftotal = 0.0
        for v in flows:
            ftotal += v
        if ftotal != 1.0:
            flows = [v / ftotal for v in flows]
        return total, flows, temp, p
    if n == 2:
        (amf, afr, at, ap), (bmf, bfr, bt, bp) = live
        total = 0.0 + amf + bmf
        temp = 0.0 + at * amf / total + bt * bmf / total
        pressure = bp if bp < ap else ap
        if _SEVEN:
            a0, a1, a2, a3, a4, a5, a6 = afr
            c0, c1, c2, c3, c4, c5, c6 = bfr
            g0 = 0.0 + amf * a0 + bmf * c0
            g1 = 0.0 + amf * a1 + bmf * c1
            g2 = 0.0 + amf * a2 + bmf * c2
            g3 = 0.0 + amf * a3 + bmf * c3
            g4 = 0.0 + amf * a4 + bmf * c4
            g5 = 0.0 + amf * a5 + bmf * c5
            g6 = 0.0 + amf * a6 + bmf * c6
            ftotal = 0.0 + g0 + g1 + g2 + g3 + g4 + g5 + g6
            if ftotal != 1.0:
                flows = [g0 / ftotal, g1 / ftotal, g2 / ftotal,
                         g3 / ftotal, g4 / ftotal, g5 / ftotal,
                         g6 / ftotal]
            else:
                flows = [g0, g1, g2, g3, g4, g5, g6]
            return total, flows, temp, pressure
        flows = [0.0 + amf * a + bmf * b for a, b in zip(afr, bfr)]
        ftotal = 0.0
        for v in flows:
            ftotal += v
        if ftotal != 1.0:
            flows = [v / ftotal for v in flows]
        return total, flows, temp, pressure
    total = 0.0
    for raw in live:
        total += raw[0]
    flows = [0.0] * N_SPECIES
    temp = 0.0
    for mf, fractions, t, _ in live:
        temp += t * mf / total
        for i in range(N_SPECIES):
            flows[i] += mf * fractions[i]
    pressure = live[0][3]
    for raw in live[1:]:
        if raw[3] < pressure:
            pressure = raw[3]
    ftotal = 0.0
    for v in flows:
        ftotal += v
    if ftotal != 1.0:
        flows = [v / ftotal for v in flows]
    return total, flows, temp, pressure


# ----------------------------------------------------------------------
# numpy flavor helpers.  ``np`` is always the imported numpy module.
# ----------------------------------------------------------------------
def _asum(vector) -> float:
    """Sequential sum of an ndarray, matching ``sum(list)`` exactly."""
    total = 0.0
    for v in vector.tolist():
        total += v
    return total


_NP_SPLITS: dict[tuple[float, float], object] = {}
_NP_SPLITS_MAX = 16384


def _np_splits(np, temperature_c: float, pressure_kpa: float):
    """ndarray view of the `_split_fractions` cache entry."""
    key = (temperature_c, pressure_kpa)
    arr = _NP_SPLITS.get(key)
    if arr is None:
        if len(_NP_SPLITS) >= _NP_SPLITS_MAX:
            _NP_SPLITS.clear()
        arr = np.asarray(_split_fractions(temperature_c, pressure_kpa))
        _NP_SPLITS[key] = arr
    return arr


def _np_renorm(np, fractions):
    """`_renorm` for the np flavor: elementwise divide, sequential total."""
    arr = np.asarray(fractions)
    total = 0.0
    for v in arr.tolist():
        total += v
    if total == 1.0:
        return arr.copy()
    return arr / total


def _np_mix_raw(np, live):
    """`_mix_raw` with an ndarray flow accumulator."""
    total = 0.0
    for raw in live:
        total += raw[0]
    flows = np.zeros(N_SPECIES)
    temp = 0.0
    for mf, fractions, t, _ in live:
        temp += t * mf / total
        flows = flows + mf * np.asarray(fractions)
    pressure = live[0][3]
    for raw in live[1:]:
        if raw[3] < pressure:
            pressure = raw[3]
    ftotal = _asum(flows)
    if ftotal != 1.0:
        flows = flows / ftotal
    return total, flows, temp, pressure


# ----------------------------------------------------------------------
# Mixer
# ----------------------------------------------------------------------
def mixer_kernel(unit, np):
    port = unit.outlet_port

    if np is None:
        def kernel(dt_sec: float) -> None:
            live = []
            for source in unit.inlets:
                raw = _read(source)
                if raw[0] > 0:
                    live.append(raw)
            if live:
                port.mf, port.fr, port.t, port.p = _mix_raw(live)
            else:
                port.mf = 0.0
                port.fr = _PURE_C1
                port.t = 25.0
                port.p = 101.3
            port.stream = None
        return kernel

    def kernel(dt_sec: float) -> None:
        live = []
        for source in unit.inlets:
            raw = _read(source)
            if raw[0] > 0:
                live.append(raw)
        if not live:
            port.set_raw(0.0, _PURE_C1, 25.0, 101.3)
            return
        port.set_raw(*_np_mix_raw(np, live))
    return kernel


# ----------------------------------------------------------------------
# Two-phase separator
# ----------------------------------------------------------------------
def _separator_kernel7(unit):
    """Scalarized pure-python separator kernel, unrolled for the fixed
    seven-species width: every intermediate species vector lives in
    scalar locals, so the hot path allocates only the two output
    fraction lists and the holdup write-back.  Float-op order is the
    scalar ``step()``'s, literally -- unrolled ``a0 + a1 + ...`` chains
    equal ``sum(list)`` bit-for-bit because every summed vector here is
    non-negative (``0 + a0 == a0`` can only differ for ``-0.0``)."""
    valve = unit.liquid_valve
    vport = unit.vapor_out_port
    lport = unit.liquid_out_port
    backpressure = unit.drain_backpressure
    track_feed_t = unit._fixed_temperature_c is None
    valve_cv = valve.cv_mol_s
    valve_tau = valve.actuator_tau_sec
    pressure = unit.pressure_kpa
    blow_by_fraction = unit.blow_by_fraction
    capacity = unit.holdup_capacity_mol
    p0, p1, p2, p3, p4, p5, p6 = _PURE_C1
    memo_t = memo_splits = None

    def kernel(dt_sec: float) -> None:
        nonlocal memo_t, memo_splits
        # ControlValve.step inlined (tau is fixed at construction).
        if valve_tau <= 0:
            valve.opening_pct = valve.command_pct
        else:
            alpha = dt_sec / (valve_tau + dt_sec)
            valve.opening_pct += alpha * (valve.command_pct
                                          - valve.opening_pct)
        # _read() inlined.
        src = unit.feed
        if type(src) is StreamPort:
            s = src.stream
            if s is None:
                mf = src.mf
                fractions = src.fr
                feed_t = src.t
            else:
                mf = s.molar_flow
                fractions = s.composition.fractions
                feed_t = s.temperature_c
        else:
            s = src()
            mf = s.molar_flow
            fractions = s.composition.fractions
            feed_t = s.temperature_c
        if track_feed_t:
            unit.temperature_c = feed_t
        temperature = unit.temperature_c
        # flash() inlined; last-key memo over the `_split_fractions`
        # cache (a converged separator flashes at one temperature).
        if temperature == memo_t:
            splits = memo_splits
        else:
            splits = _split_fractions(temperature, pressure)
            memo_t, memo_splits = temperature, splits
        s0, s1, s2, s3, s4, s5, s6 = splits
        f0, f1, f2, f3, f4, f5, f6 = fractions
        w0 = mf * f0
        w1 = mf * f1
        w2 = mf * f2
        w3 = mf * f3
        w4 = mf * f4
        w5 = mf * f5
        w6 = mf * f6
        l0 = w0 * s0
        l1 = w1 * s1
        l2 = w2 * s2
        l3 = w3 * s3
        l4 = w4 * s4
        l5 = w5 * s5
        l6 = w6 * s6
        v0 = w0 - l0
        v1 = w1 - l1
        v2 = w2 - l2
        v3 = w3 - l3
        v4 = w4 - l4
        v5 = w5 - l5
        v6 = w6 - l6
        vt = v0 + v1 + v2 + v3 + v4 + v5 + v6
        lt = l0 + l1 + l2 + l3 + l4 + l5 + l6
        if vt > 1e-12:
            v_mf = vt
            if vt == 1.0:
                v_fr = [v0, v1, v2, v3, v4, v5, v6]
            else:
                v_fr = [v0 / vt, v1 / vt, v2 / vt, v3 / vt, v4 / vt,
                        v5 / vt, v6 / vt]
        else:
            v_mf = 0.0
            v_fr = _PURE_C1
        if lt > 1e-12:
            l_mf = lt
            if lt == 1.0:
                lf0 = l0
                lf1 = l1
                lf2 = l2
                lf3 = l3
                lf4 = l4
                lf5 = l5
                lf6 = l6
            else:
                lf0 = l0 / lt
                lf1 = l1 / lt
                lf2 = l2 / lt
                lf3 = l3 / lt
                lf4 = l4 / lt
                lf5 = l5 / lt
                lf6 = l6 / lt
        else:
            l_mf = 0.0
            lf0 = p0
            lf1 = p1
            lf2 = p2
            lf3 = p3
            lf4 = p4
            lf5 = p5
            lf6 = p6
        # Condensed liquid accumulates in the holdup.
        h0, h1, h2, h3, h4, h5, h6 = unit.holdup
        h0 = h0 + (l_mf * lf0) * dt_sec
        h1 = h1 + (l_mf * lf1) * dt_sec
        h2 = h2 + (l_mf * lf2) * dt_sec
        h3 = h3 + (l_mf * lf3) * dt_sec
        h4 = h4 + (l_mf * lf4) * dt_sec
        h5 = h5 + (l_mf * lf5) * dt_sec
        h6 = h6 + (l_mf * lf6) * dt_sec
        requested = valve_cv * valve.opening_pct / 100.0
        if backpressure is not None:
            # max(0.0, min(1.0, bp)) as conditionals.
            bp = backpressure()
            bp = bp if bp < 1.0 else 1.0
            requested *= bp if bp > 0.0 else 0.0
        ht = h0 + h1 + h2 + h3 + h4 + h5 + h6
        drainable = ht / dt_sec
        drained = drainable if drainable < requested else requested
        lo_t = temperature
        lo_p = pressure
        if drained > 0 and ht > 0:
            fraction = drained * dt_sec / ht
            if fraction > 1.0:
                fraction = 1.0
            o0 = h0 * fraction / dt_sec
            o1 = h1 * fraction / dt_sec
            o2 = h2 * fraction / dt_sec
            o3 = h3 * fraction / dt_sec
            o4 = h4 * fraction / dt_sec
            o5 = h5 * fraction / dt_sec
            o6 = h6 * fraction / dt_sec
            keep = 1.0 - fraction
            h0 = h0 * keep
            h1 = h1 * keep
            h2 = h2 * keep
            h3 = h3 * keep
            h4 = h4 * keep
            h5 = h5 * keep
            h6 = h6 * keep
            ot = o0 + o1 + o2 + o3 + o4 + o5 + o6
            if ot > 1e-12:
                lo_mf = ot
                if ot == 1.0:
                    lo_fr = [o0, o1, o2, o3, o4, o5, o6]
                else:
                    lo_fr = [o0 / ot, o1 / ot, o2 / ot, o3 / ot, o4 / ot,
                             o5 / ot, o6 / ot]
            else:
                lo_mf = ot
                lo_fr = [lf0, lf1, lf2, lf3, lf4, lf5, lf6]
        else:
            lo_mf = 0.0
            lo_fr = _PURE_C1
        # Gas blow-by: unmet valve demand pulls vapor into the liquid line.
        shortfall = requested - drained
        if shortfall < 0.0:
            shortfall = 0.0
        blow_by = shortfall * blow_by_fraction
        if blow_by > 1e-9 and v_mf > 1e-9:
            taken = v_mf if v_mf < blow_by else blow_by
            unit.blow_by_flow = taken
            live = ([(lo_mf, lo_fr, lo_t, lo_p)] if lo_mf > 0 else [])
            live.append((taken, v_fr, temperature, pressure))
            lo_mf, lo_fr, lo_t, lo_p = _mix_raw(live)
            v_mf = v_mf - taken
        else:
            unit.blow_by_flow = 0.0
        # Overflow protection: liquid carried over with the vapor.
        ht = h0 + h1 + h2 + h3 + h4 + h5 + h6
        if ht > capacity:
            excess = ht - capacity
            scale = capacity / ht
            h0 = h0 * scale
            h1 = h1 * scale
            h2 = h2 * scale
            h3 = h3 * scale
            h4 = h4 * scale
            h5 = h5 * scale
            h6 = h6 * scale
            unit.overflow_mol += excess
        unit.holdup = [h0, h1, h2, h3, h4, h5, h6]
        vport.mf = v_mf
        vport.fr = v_fr
        vport.t = temperature
        vport.p = pressure
        vport.stream = None
        lport.mf = lo_mf
        lport.fr = lo_fr
        lport.t = lo_t
        lport.p = lo_p
        lport.stream = None
    return kernel


def separator_kernel(unit, np):
    if np is None:
        if N_SPECIES == 7:
            return _separator_kernel7(unit)
        return None  # exotic species width: fall back to scalar step()
    valve = unit.liquid_valve
    vport = unit.vapor_out_port
    lport = unit.liquid_out_port
    backpressure = unit.drain_backpressure
    track_feed_t = unit._fixed_temperature_c is None
    # Init-only unit parameters, snapshotted at compile time (kernels
    # compile lazily on the first flowsheet step, after construction).
    valve_cv = valve.cv_mol_s
    valve_tau = valve.actuator_tau_sec
    pressure = unit.pressure_kpa
    blow_by_fraction = unit.blow_by_fraction
    capacity = unit.holdup_capacity_mol
    # Last (T, P) -> splits memo: a converged separator flashes at the
    # same key every step, so skip even the cache-dict lookup then.
    memo_t = memo_splits = None

    pure = np.asarray(_PURE_C1)
    unit.holdup = np.asarray(unit.holdup, dtype=float)

    def kernel(dt_sec: float) -> None:
        nonlocal memo_t, memo_splits
        # ControlValve.step inlined (tau is fixed at construction).
        if valve_tau <= 0:
            valve.opening_pct = valve.command_pct
        else:
            alpha = dt_sec / (valve_tau + dt_sec)
            valve.opening_pct += alpha * (valve.command_pct
                                          - valve.opening_pct)
        mf, fractions, feed_t, _feed_p = _read(unit.feed)
        if track_feed_t:
            unit.temperature_c = feed_t
        temperature = unit.temperature_c
        # flash() inlined.
        if temperature == memo_t:
            splits = memo_splits
        else:
            splits = _split_fractions(temperature, pressure)
            memo_t, memo_splits = temperature, splits
        if np is None:
            flows = [mf * f for f in fractions]
            liquid_flows = [f * s for f, s in zip(flows, splits)]
            vapor_flows = [f - l for f, l in zip(flows, liquid_flows)]
            vapor_total = sum(vapor_flows)
            liquid_total = sum(liquid_flows)
        else:
            flow = mf * np.asarray(fractions)
            liquid_flows = flow * _np_splits(np, temperature, pressure)
            vapor_flows = flow - liquid_flows
            vapor_total = _asum(vapor_flows)
            liquid_total = _asum(liquid_flows)
        if vapor_total > 1e-12:
            v_mf = vapor_total
            v_fr = (vapor_flows if vapor_total == 1.0
                    else vapor_flows / vapor_total if np is not None
                    else [v / vapor_total for v in vapor_flows])
        else:
            v_mf, v_fr = 0.0, pure
        if liquid_total > 1e-12:
            l_mf = liquid_total
            l_fr = (liquid_flows if liquid_total == 1.0
                    else liquid_flows / liquid_total if np is not None
                    else [v / liquid_total for v in liquid_flows])
        else:
            l_mf, l_fr = 0.0, pure
        # Condensed liquid accumulates in the holdup.
        holdup = unit.holdup
        if np is None:
            holdup = unit.holdup = [
                h + (l_mf * f) * dt_sec for h, f in zip(holdup, l_fr)]
        else:
            holdup = unit.holdup = holdup + l_mf * l_fr * dt_sec
        requested = valve_cv * valve.opening_pct / 100.0
        if backpressure is not None:
            # max(0.0, min(1.0, bp)), conditionals (see set_command).
            bp = backpressure()
            bp = bp if bp < 1.0 else 1.0
            requested *= bp if bp > 0.0 else 0.0
        holdup_total = (sum(holdup) if np is None else _asum(holdup))
        drainable = holdup_total / dt_sec
        drained = drainable if drainable < requested else requested
        lo_t = temperature
        lo_p = pressure
        if drained > 0 and holdup_total > 0:
            fraction = drained * dt_sec / holdup_total
            if fraction > 1.0:
                fraction = 1.0
            if np is None:
                out_flows = [h * fraction / dt_sec for h in holdup]
                holdup = unit.holdup = [h * (1.0 - fraction) for h in holdup]
                out_total = sum(out_flows)
            else:
                out_flows = holdup * fraction / dt_sec
                holdup = unit.holdup = holdup * (1.0 - fraction)
                out_total = _asum(out_flows)
            if out_total > 1e-12:
                lo_mf = out_total
                lo_fr = (out_flows if out_total == 1.0
                         else out_flows / out_total if np is not None
                         else [v / out_total for v in out_flows])
            else:
                lo_mf, lo_fr = out_total, l_fr
        else:
            lo_mf, lo_fr = 0.0, pure
        # Gas blow-by: unmet valve demand pulls vapor into the liquid line.
        shortfall = requested - drained
        if shortfall < 0.0:
            shortfall = 0.0
        blow_by = shortfall * blow_by_fraction
        if blow_by > 1e-9 and v_mf > 1e-9:
            taken = v_mf if v_mf < blow_by else blow_by
            unit.blow_by_flow = taken
            live = ([(lo_mf, lo_fr, lo_t, lo_p)] if lo_mf > 0 else [])
            live.append((taken, v_fr, temperature, pressure))
            if np is None:
                lo_mf, lo_fr, lo_t, lo_p = _mix_raw(live)
            else:
                lo_mf, lo_fr, lo_t, lo_p = _np_mix_raw(np, live)
            v_mf = v_mf - taken
        else:
            unit.blow_by_flow = 0.0
        # Overflow protection: liquid carried over with the vapor.
        holdup_total = (sum(holdup) if np is None else _asum(holdup))
        if holdup_total > capacity:
            excess = holdup_total - capacity
            scale = capacity / holdup_total
            if np is None:
                unit.holdup = [h * scale for h in holdup]
            else:
                unit.holdup = holdup * scale
            unit.overflow_mol += excess
        # set_raw inlined on both output ports.
        vport.mf = v_mf
        vport.fr = v_fr
        vport.t = temperature
        vport.p = pressure
        vport.stream = None
        lport.mf = lo_mf
        lport.fr = lo_fr
        lport.t = lo_t
        lport.p = lo_p
        lport.stream = None
    return kernel


# ----------------------------------------------------------------------
# Gas/gas exchanger and chiller
# ----------------------------------------------------------------------
def gasgas_kernel(unit, np):
    hport = unit.hot_out_port
    cport = unit.cold_out_port
    renorm = _renorm if np is None else (lambda fr: _np_renorm(np, fr))
    effectiveness = unit.effectiveness

    def kernel(dt_sec: float) -> None:
        h_mf, h_fr, h_t, h_p = _read(unit.hot_inlet)
        c_mf, c_fr, c_t, c_p = _read(unit.cold_inlet)
        if h_mf <= 1e-9 or c_mf <= 1e-9:
            hport.set_raw(h_mf, renorm(h_fr), h_t, h_p)
            cport.set_raw(c_mf, renorm(c_fr), c_t, c_p)
            unit.duty_watts = 0.0
            return
        c_min = c_mf if c_mf < h_mf else h_mf
        q_max = c_min * (h_t - c_t)
        q = effectiveness * (q_max if q_max > 0.0 else 0.0)
        h_t_out = h_t - q / h_mf
        c_t_out = c_t + q / c_mf
        hport.mf = h_mf
        hport.fr = renorm(h_fr)
        hport.t = h_t_out
        hport.p = h_p
        hport.stream = None
        cport.mf = c_mf
        cport.fr = renorm(c_fr)
        cport.t = c_t_out
        cport.p = c_p
        cport.stream = None
        unit.duty_watts = h_mf * HEAT_CAPACITY_J_PER_MOL_K * (h_t - h_t_out)
    return kernel


def chiller_kernel(unit, np):
    port = unit.outlet_port
    renorm = _renorm if np is None else (lambda fr: _np_renorm(np, fr))
    tau_sec = unit.tau_sec
    t_max_c = unit.t_max_c
    span = unit.t_max_c - unit.t_min_c

    def kernel(dt_sec: float) -> None:
        alpha = dt_sec / (tau_sec + dt_sec)
        target = t_max_c - span * unit.duty_pct / 100.0
        unit.outlet_temperature_c += alpha * (
            target - unit.outlet_temperature_c)
        mf, fractions, t, p = _read(unit.inlet)
        port.mf = mf
        port.fr = renorm(fractions)
        port.t = unit.outlet_temperature_c
        port.p = p
        port.stream = None
        unit.duty_watts = abs(mf * HEAT_CAPACITY_J_PER_MOL_K
                              * (t - unit.outlet_temperature_c))
    return kernel


# ----------------------------------------------------------------------
# Sales-gas vapor header (class lives in gas_plant.py)
# ----------------------------------------------------------------------
def vapor_header_kernel(unit, np):
    valve = unit.valve
    port = unit.outlet_port
    renorm = _renorm if np is None else (lambda fr: _np_renorm(np, fr))
    pure = _PURE_C1 if np is None else np.asarray(_PURE_C1)
    valve_cv = valve.cv_mol_s
    valve_tau = valve.actuator_tau_sec
    volume = unit.volume_mol_per_kpa

    def kernel(dt_sec: float) -> None:
        if valve_tau <= 0:
            valve.opening_pct = valve.command_pct
        else:
            alpha = dt_sec / (valve_tau + dt_sec)
            valve.opening_pct += alpha * (valve.command_pct
                                          - valve.opening_pct)
        mf, fractions, t, _p = _read(unit.inlet)
        requested = valve_cv * valve.opening_pct / 100.0
        excess = unit.pressure_kpa - 1000.0
        supply = mf + (excess if excess > 0.0 else 0.0) * 0.05
        out_flow = supply if supply < requested else requested
        pressure = unit.pressure_kpa + (mf - out_flow) * dt_sec / volume
        unit.pressure_kpa = pressure if pressure > 200.0 else 200.0
        port.mf = out_flow
        if mf > 0:
            port.fr = renorm(fractions)
            port.t = t
        else:
            port.fr = pure
            port.t = 25.0
        port.p = unit.pressure_kpa
        port.stream = None
    return kernel


# ----------------------------------------------------------------------
# Depropanizer column
# ----------------------------------------------------------------------
def _column_kernel7(unit):
    """Scalarized pure-python depropanizer kernel (see
    :func:`_separator_kernel7` for the unrolling contract)."""
    dv = unit.distillate_valve
    bv = unit.bottoms_valve
    gv = unit.overhead_gas_valve
    dv_cv, bv_cv, gv_cv = dv.cv_mol_s, bv.cv_mol_s, gv.cv_mol_s
    dv_tau, bv_tau, gv_tau = (dv.actuator_tau_sec, bv.actuator_tau_sec,
                              gv.actuator_tau_sec)
    gport = unit.overhead_gas_out_port
    dport = unit.distillate_out_port
    bport = unit.bottoms_out_port
    reboiler_tau = unit.reboiler_tau_sec
    pressure_volume = unit.pressure_volume_mol_per_kpa
    drum_capacity = unit.drum_capacity_mol
    sump_capacity = unit.sump_capacity_mol

    def kernel(dt_sec: float) -> None:
        # ControlValve.step inlined for the three product valves.
        if dv_tau <= 0:
            dv.opening_pct = dv.command_pct
        else:
            alpha = dt_sec / (dv_tau + dt_sec)
            dv.opening_pct += alpha * (dv.command_pct - dv.opening_pct)
        if bv_tau <= 0:
            bv.opening_pct = bv.command_pct
        else:
            alpha = dt_sec / (bv_tau + dt_sec)
            bv.opening_pct += alpha * (bv.command_pct - bv.opening_pct)
        if gv_tau <= 0:
            gv.opening_pct = gv.command_pct
        else:
            alpha = dt_sec / (gv_tau + dt_sec)
            gv.opening_pct += alpha * (gv.command_pct - gv.opening_pct)
        # Reboiler temperature dynamics: duty 0..100 % -> 80..110 degC.
        target = 80.0 + 30.0 * unit.reboil_duty_pct / 100.0
        alpha = dt_sec / (reboiler_tau + dt_sec)
        unit.temperature_c += alpha * (target - unit.temperature_c)
        # _read() inlined.
        src = unit.feed
        if type(src) is StreamPort:
            s = src.stream
            if s is None:
                feed_mf = src.mf
                feed_fr = src.fr
            else:
                feed_mf = s.molar_flow
                feed_fr = s.composition.fractions
        else:
            s = src()
            feed_mf = s.molar_flow
            feed_fr = s.composition.fractions
        shift = (unit.temperature_c - 95.0) / 10.0 * 0.02
        rec = list(_BASE_RECOVERY)
        r = rec[_C3_I] + shift
        r = r if r > 0.5 else 0.5
        rec[_C3_I] = r if r < 0.999 else 0.999
        r = rec[_IC4_I] + shift
        r = r if r > 0.0 else 0.0
        rec[_IC4_I] = r if r < 0.5 else 0.5
        r = rec[_NC4_I] + shift
        r = r if r > 0.0 else 0.0
        rec[_NC4_I] = r if r < 0.5 else 0.5
        r0, r1, r2, r3, r4, r5, r6 = rec
        f0, f1, f2, f3, f4, f5, f6 = feed_fr
        w0 = feed_mf * f0
        w1 = feed_mf * f1
        w2 = feed_mf * f2
        w3 = feed_mf * f3
        w4 = feed_mf * f4
        w5 = feed_mf * f5
        w6 = feed_mf * f6
        o0 = w0 * r0
        o1 = w1 * r1
        o2 = w2 * r2
        o3 = w3 * r3
        o4 = w4 * r4
        o5 = w5 * r5
        o6 = w6 * r6
        b0 = w0 * (1.0 - r0)
        b1 = w1 * (1.0 - r1)
        b2 = w2 * (1.0 - r2)
        b3 = w3 * (1.0 - r3)
        b4 = w4 * (1.0 - r4)
        b5 = w5 * (1.0 - r5)
        b6 = w6 * (1.0 - r6)
        ot = o0 + o1 + o2 + o3 + o4 + o5 + o6
        excess = unit.pressure_kpa - 1200.0
        supply = ot * 0.35 + (excess if excess > 0.0 else 0.0) * 0.02
        requested = gv_cv * gv.opening_pct / 100.0
        gas_out_flow = supply if supply < requested else requested
        pressure = unit.pressure_kpa + (ot * 0.3 - gas_out_flow) \
            * dt_sec / pressure_volume
        unit.pressure_kpa = pressure if pressure > 200.0 else 200.0
        if ot > 1e-9:
            if ot == 1.0:
                og_fr = [o0, o1, o2, o3, o4, o5, o6]
            else:
                og_fr = [o0 / ot, o1 / ot, o2 / ot, o3 / ot, o4 / ot,
                         o5 / ot, o6 / ot]
        else:
            og_fr = _C3_PURE
        gport.mf = gas_out_flow
        gport.fr = og_fr
        gport.t = 40.0
        gport.p = unit.pressure_kpa
        gport.stream = None
        # Condensed overhead (the rest) accumulates in the reflux drum.
        condensed = ot - gas_out_flow
        if condensed < 0.0:
            condensed = 0.0
        d0, d1, d2, d3, d4, d5, d6 = unit.drum_holdup
        if ot > 1e-9:
            d0 = d0 + (o0 / ot) * condensed * dt_sec
            d1 = d1 + (o1 / ot) * condensed * dt_sec
            d2 = d2 + (o2 / ot) * condensed * dt_sec
            d3 = d3 + (o3 / ot) * condensed * dt_sec
            d4 = d4 + (o4 / ot) * condensed * dt_sec
            d5 = d5 + (o5 / ot) * condensed * dt_sec
            d6 = d6 + (o6 / ot) * condensed * dt_sec
        s0, s1, s2, s3, s4, s5, s6 = unit.sump_holdup
        s0 = s0 + b0 * dt_sec
        s1 = s1 + b1 * dt_sec
        s2 = s2 + b2 * dt_sec
        s3 = s3 + b3 * dt_sec
        s4 = s4 + b4 * dt_sec
        s5 = s5 + b5 * dt_sec
        s6 = s6 + b6 * dt_sec
        # _drain on the drum, inlined.
        dtot = d0 + d1 + d2 + d3 + d4 + d5 + d6
        req = dv_cv * dv.opening_pct / 100.0
        drainable = dtot / dt_sec
        drained = drainable if drainable < req else req
        if drained <= 1e-12 or dtot <= 1e-12:
            d_mf = 0.0
            d_fr = _PURE_C1
        else:
            fraction = drained * dt_sec / dtot
            if fraction > 1.0:
                fraction = 1.0
            x0 = d0 * fraction / dt_sec
            x1 = d1 * fraction / dt_sec
            x2 = d2 * fraction / dt_sec
            x3 = d3 * fraction / dt_sec
            x4 = d4 * fraction / dt_sec
            x5 = d5 * fraction / dt_sec
            x6 = d6 * fraction / dt_sec
            keep = 1.0 - fraction
            d0 = d0 * keep
            d1 = d1 * keep
            d2 = d2 * keep
            d3 = d3 * keep
            d4 = d4 * keep
            d5 = d5 * keep
            d6 = d6 * keep
            d_mf = x0 + x1 + x2 + x3 + x4 + x5 + x6
            if d_mf == 1.0:
                d_fr = [x0, x1, x2, x3, x4, x5, x6]
            else:
                d_fr = [x0 / d_mf, x1 / d_mf, x2 / d_mf, x3 / d_mf,
                        x4 / d_mf, x5 / d_mf, x6 / d_mf]
        dport.mf = d_mf
        dport.fr = d_fr
        dport.t = 40.0
        dport.p = unit.pressure_kpa
        dport.stream = None
        # _drain on the sump, inlined.
        stot = s0 + s1 + s2 + s3 + s4 + s5 + s6
        req = bv_cv * bv.opening_pct / 100.0
        drainable = stot / dt_sec
        drained = drainable if drainable < req else req
        if drained <= 1e-12 or stot <= 1e-12:
            b_mf = 0.0
            b_fr = _PURE_C1
        else:
            fraction = drained * dt_sec / stot
            if fraction > 1.0:
                fraction = 1.0
            x0 = s0 * fraction / dt_sec
            x1 = s1 * fraction / dt_sec
            x2 = s2 * fraction / dt_sec
            x3 = s3 * fraction / dt_sec
            x4 = s4 * fraction / dt_sec
            x5 = s5 * fraction / dt_sec
            x6 = s6 * fraction / dt_sec
            keep = 1.0 - fraction
            s0 = s0 * keep
            s1 = s1 * keep
            s2 = s2 * keep
            s3 = s3 * keep
            s4 = s4 * keep
            s5 = s5 * keep
            s6 = s6 * keep
            b_mf = x0 + x1 + x2 + x3 + x4 + x5 + x6
            if b_mf == 1.0:
                b_fr = [x0, x1, x2, x3, x4, x5, x6]
            else:
                b_fr = [x0 / b_mf, x1 / b_mf, x2 / b_mf, x3 / b_mf,
                        x4 / b_mf, x5 / b_mf, x6 / b_mf]
        bport.mf = b_mf
        bport.fr = b_fr
        bport.t = unit.temperature_c
        bport.p = unit.pressure_kpa
        bport.stream = None
        # _clamp on both holdups.
        dtot = d0 + d1 + d2 + d3 + d4 + d5 + d6
        if dtot > drum_capacity:
            scale = drum_capacity / dtot
            d0 = d0 * scale
            d1 = d1 * scale
            d2 = d2 * scale
            d3 = d3 * scale
            d4 = d4 * scale
            d5 = d5 * scale
            d6 = d6 * scale
        unit.drum_holdup = [d0, d1, d2, d3, d4, d5, d6]
        stot = s0 + s1 + s2 + s3 + s4 + s5 + s6
        if stot > sump_capacity:
            scale = sump_capacity / stot
            s0 = s0 * scale
            s1 = s1 * scale
            s2 = s2 * scale
            s3 = s3 * scale
            s4 = s4 * scale
            s5 = s5 * scale
            s6 = s6 * scale
        unit.sump_holdup = [s0, s1, s2, s3, s4, s5, s6]
    return kernel


def column_kernel(unit, np):
    if np is None:
        if N_SPECIES == 7:
            return _column_kernel7(unit)
        return None  # exotic species width: fall back to scalar step()
    dv = unit.distillate_valve
    bv = unit.bottoms_valve
    gv = unit.overhead_gas_valve
    dv_cv, bv_cv, gv_cv = dv.cv_mol_s, bv.cv_mol_s, gv.cv_mol_s
    valves = ((dv, dv.actuator_tau_sec), (bv, bv.actuator_tau_sec),
              (gv, gv.actuator_tau_sec))
    gport = unit.overhead_gas_out_port
    dport = unit.distillate_out_port
    bport = unit.bottoms_out_port
    reboiler_tau = unit.reboiler_tau_sec
    pressure_volume = unit.pressure_volume_mol_per_kpa
    drum_capacity = unit.drum_capacity_mol
    sump_capacity = unit.sump_capacity_mol

    if np is None:
        pure = _PURE_C1

        def drain_raw(holdup, requested, dt_sec):
            """`Depropanizer._drain` on the raw holdup list."""
            total = sum(holdup)
            drainable = total / dt_sec
            drained = drainable if drainable < requested else requested
            if drained <= 1e-12 or total <= 1e-12:
                return 0.0, pure, holdup
            fraction = drained * dt_sec / total
            if fraction > 1.0:
                fraction = 1.0
            out_flows = [h * fraction / dt_sec for h in holdup]
            holdup = [h * (1.0 - fraction) for h in holdup]
            out_total = sum(out_flows)
            fr = (out_flows if out_total == 1.0
                  else [v / out_total for v in out_flows])
            return out_total, fr, holdup
    else:
        pure = np.asarray(_PURE_C1)
        unit.drum_holdup = np.asarray(unit.drum_holdup, dtype=float)
        unit.sump_holdup = np.asarray(unit.sump_holdup, dtype=float)

        def drain_raw(holdup, requested, dt_sec):
            total = _asum(holdup)
            drained = min(requested, total / dt_sec)
            if drained <= 1e-12 or total <= 1e-12:
                return 0.0, pure, holdup
            fraction = min(1.0, drained * dt_sec / total)
            out_flows = holdup * fraction / dt_sec
            holdup = holdup * (1.0 - fraction)
            out_total = _asum(out_flows)
            fr = (out_flows if out_total == 1.0 else out_flows / out_total)
            return out_total, fr, holdup

    def kernel(dt_sec: float) -> None:
        # ControlValve.step inlined for the three product valves.
        for v, tau in valves:
            if tau <= 0:
                v.opening_pct = v.command_pct
            else:
                alpha = dt_sec / (tau + dt_sec)
                v.opening_pct += alpha * (v.command_pct - v.opening_pct)
        # Reboiler temperature dynamics: duty 0..100 % -> 80..110 degC.
        target = 80.0 + 30.0 * unit.reboil_duty_pct / 100.0
        alpha = dt_sec / (reboiler_tau + dt_sec)
        unit.temperature_c += alpha * (target - unit.temperature_c)
        feed_mf, feed_fr, _t, _p = _read(unit.feed)
        shift = (unit.temperature_c - 95.0) / 10.0 * 0.02
        if np is None:
            rec = list(_BASE_RECOVERY)
            r = rec[_C3_I] + shift
            r = r if r > 0.5 else 0.5
            rec[_C3_I] = r if r < 0.999 else 0.999
            r = rec[_IC4_I] + shift
            r = r if r > 0.0 else 0.0
            rec[_IC4_I] = r if r < 0.5 else 0.5
            r = rec[_NC4_I] + shift
            r = r if r > 0.0 else 0.0
            rec[_NC4_I] = r if r < 0.5 else 0.5
            flows = [feed_mf * f for f in feed_fr]
            overhead_flows = [f * r for f, r in zip(flows, rec)]
            bottoms_flows = [f * (1.0 - r) for f, r in zip(flows, rec)]
            overhead_total = sum(overhead_flows)
        else:
            # The shift only touches three entries; the per-species
            # clamps stay scalar, the flow split is elementwise.
            rec = list(_BASE_RECOVERY)
            rec[_C3_I] = min(0.999, max(0.5, _BASE_RECOVERY[_C3_I] + shift))
            rec[_IC4_I] = min(0.5, max(0.0, _BASE_RECOVERY[_IC4_I] + shift))
            rec[_NC4_I] = min(0.5, max(0.0, _BASE_RECOVERY[_NC4_I] + shift))
            rec_arr = np.asarray(rec)
            flow = feed_mf * np.asarray(feed_fr)
            overhead_flows = flow * rec_arr
            bottoms_flows = flow * (1.0 - rec_arr)
            overhead_total = _asum(overhead_flows)
        excess = unit.pressure_kpa - 1200.0
        supply = (overhead_total * 0.35
                  + (excess if excess > 0.0 else 0.0) * 0.02)
        requested = gv_cv * gv.opening_pct / 100.0
        gas_out_flow = supply if supply < requested else requested
        pressure = unit.pressure_kpa + (overhead_total * 0.3 - gas_out_flow) \
            * dt_sec / pressure_volume
        unit.pressure_kpa = pressure if pressure > 200.0 else 200.0
        if overhead_total > 1e-9:
            og_fr = (overhead_flows if overhead_total == 1.0
                     else overhead_flows / overhead_total if np is not None
                     else [v / overhead_total for v in overhead_flows])
        else:
            og_fr = _C3_PURE if np is None else pure_c3(np)
        gport.mf = gas_out_flow
        gport.fr = og_fr
        gport.t = 40.0
        gport.p = unit.pressure_kpa
        gport.stream = None
        # Condensed overhead (the rest) accumulates in the reflux drum.
        condensed = overhead_total - gas_out_flow
        if condensed < 0.0:
            condensed = 0.0
        drum = unit.drum_holdup
        sump = unit.sump_holdup
        if np is None:
            if overhead_total > 1e-9:
                drum = unit.drum_holdup = [
                    d + (o / overhead_total) * condensed * dt_sec
                    for d, o in zip(drum, overhead_flows)]
            sump = unit.sump_holdup = [
                s + b * dt_sec for s, b in zip(sump, bottoms_flows)]
        else:
            if overhead_total > 1e-9:
                drum = unit.drum_holdup = (
                    drum + overhead_flows / overhead_total
                    * condensed * dt_sec)
            sump = unit.sump_holdup = sump + bottoms_flows * dt_sec
        d_mf, d_fr, drum = drain_raw(drum, dv_cv * dv.opening_pct / 100.0,
                                     dt_sec)
        unit.drum_holdup = drum
        dport.mf = d_mf
        dport.fr = d_fr
        dport.t = 40.0
        dport.p = unit.pressure_kpa
        dport.stream = None
        b_mf, b_fr, sump = drain_raw(sump, bv_cv * bv.opening_pct / 100.0,
                                     dt_sec)
        unit.sump_holdup = sump
        bport.mf = b_mf
        bport.fr = b_fr
        bport.t = unit.temperature_c
        bport.p = unit.pressure_kpa
        bport.stream = None
        # _clamp on both holdups.
        total = sum(drum) if np is None else _asum(drum)
        if total > drum_capacity:
            scale = drum_capacity / total
            if np is None:
                unit.drum_holdup = [h * scale for h in drum]
            else:
                unit.drum_holdup = drum * scale
        total = sum(sump) if np is None else _asum(sump)
        if total > sump_capacity:
            scale = sump_capacity / total
            if np is None:
                unit.sump_holdup = [h * scale for h in sump]
            else:
                unit.sump_holdup = sump * scale
    return kernel


_NP_C3_PURE = None


def pure_c3(np):
    """Shared ndarray of `_C3_PURE` (built on first np-flavor use)."""
    global _NP_C3_PURE
    if _NP_C3_PURE is None:
        _NP_C3_PURE = np.asarray(_C3_PURE)
    return _NP_C3_PURE
