"""Natural gas processing plant -- the Unisim substitute.

The paper's evaluation drives a Honeywell Unisim model of a gas plant
(Fig. 4): raw gas containing N2, CO2 and C1..nC4 is flashed in an inlet
separator, cooled in a gas/gas exchanger and a propane chiller, flashed
again in a low-temperature separator (LTS), and the combined liquids are
distilled in a depropanizer.  Unisim is proprietary, so this package is a
first-principles lumped-dynamics model of the same flowsheet, exposing the
same sensor/actuator surface through the HIL bridge:

- :mod:`~repro.plant.components` -- species, compositions, streams;
- :mod:`~repro.plant.thermo` -- temperature-driven vapor/liquid splits;
- :mod:`~repro.plant.units` -- mixers, separators, exchangers, valves,
  the depropanizer;
- :mod:`~repro.plant.flowsheet` -- ordered-unit dynamic solver;
- :mod:`~repro.plant.gas_plant` -- the Fig. 4 plant with its 8 control
  loops (4 top-level + 4 depropanizer);
- :mod:`~repro.plant.hil` -- hardware-in-loop bridge to the ModBus
  process image.

The substitution preserves what the EVM sees: realistic closed-loop
dynamics on the level/flow/temperature/pressure signals the wireless
controllers sense and actuate.
"""

from repro.plant.components import SPECIES, Composition, Stream
from repro.plant.flowsheet import Flowsheet
from repro.plant.gas_plant import ControlLoop, NaturalGasPlant
from repro.plant.hil import HilBridge

__all__ = [
    "SPECIES",
    "Composition",
    "Stream",
    "Flowsheet",
    "NaturalGasPlant",
    "ControlLoop",
    "HilBridge",
]
