"""Chemical species, compositions and process streams.

The feed basis matches the paper: "a raw natural gas stream containing N2,
CO2, and C1 through n-C4".  Compositions are mole fractions over the fixed
species list; streams carry molar flow, composition, temperature and
pressure.  All flows are mol/s, temperatures degC, pressures kPa(a).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Species:
    """One component with the properties the thermo model uses."""

    name: str
    formula: str
    boiling_point_c: float   # normal boiling point
    molar_mass: float        # g/mol


SPECIES: tuple[Species, ...] = (
    Species("nitrogen", "N2", -195.8, 28.01),
    Species("carbon-dioxide", "CO2", -78.5, 44.01),
    Species("methane", "C1", -161.5, 16.04),
    Species("ethane", "C2", -88.6, 30.07),
    Species("propane", "C3", -42.1, 44.10),
    Species("isobutane", "iC4", -11.7, 58.12),
    Species("n-butane", "nC4", -0.5, 58.12),
)

SPECIES_INDEX: dict[str, int] = {s.formula: i for i, s in enumerate(SPECIES)}

N_SPECIES = len(SPECIES)

# Pure-methane fraction vector for Stream.empty() -- already normalized,
# so the constructor's list path skips the dict decoding it used to do.
_PURE_C1: list[float] = [1.0 if s.formula == "C1" else 0.0 for s in SPECIES]


class Composition:
    """Mole fractions over :data:`SPECIES`, kept normalized."""

    __slots__ = ("fractions",)

    def __init__(self, fractions: dict[str, float] | list[float]) -> None:
        if isinstance(fractions, dict):
            values = [0.0] * N_SPECIES
            for formula, fraction in fractions.items():
                if formula not in SPECIES_INDEX:
                    raise KeyError(f"unknown species {formula!r}")
                values[SPECIES_INDEX[formula]] = fraction
        else:
            if len(fractions) != N_SPECIES:
                raise ValueError(
                    f"expected {N_SPECIES} fractions, got {len(fractions)}")
            values = list(fractions)
        # Validation and normalization fused into one pass; this runs
        # for every stream a plant step creates.  Accumulation order
        # matches sum(), and division by an exactly-1.0 total is the
        # identity in IEEE-754, so skipping it changes no bits.
        total = 0.0
        for v in values:
            if v < 0:
                raise ValueError(f"negative mole fraction in {values}")
            total += v
        if total <= 0:
            raise ValueError("composition must have positive total")
        if total == 1.0:
            self.fractions = values
        else:
            self.fractions = [v / total for v in values]

    @classmethod
    def _normalized(cls, values: list[float], copy: bool = False,
                    ) -> "Composition":
        """Internal fast path for flow vectors the flowsheet itself
        built (flash splits, mixed/drained flows, fraction lists being
        copied): they are known non-negative and full-length, so the
        isinstance/shape/sign checks drop out.  Accumulation order and
        the divide-skip match ``__init__`` exactly, so the resulting
        fractions are bit-identical.  With ``copy=False`` the list is
        owned, not copied -- callers must hand over a fresh list.
        """
        self = object.__new__(cls)
        total = 0.0
        for v in values:
            total += v
        if total <= 0:
            raise ValueError("composition must have positive total")
        if total == 1.0:
            self.fractions = list(values) if copy else values
        else:
            self.fractions = [v / total for v in values]
        return self

    @classmethod
    def _from_fractions(cls, values: list[float]) -> "Composition":
        """Adopt an already-normalized fraction list verbatim.

        :class:`~repro.plant.ports.StreamPort` materialization: the list
        was produced by ``_normalized``-equivalent kernel arithmetic, so
        re-running the divide-skip pass would change no bits and only
        cost a sweep.  The caller hands over a fresh list.
        """
        self = object.__new__(cls)
        self.fractions = values
        return self

    def __getitem__(self, formula: str) -> float:
        return self.fractions[SPECIES_INDEX[formula]]

    def as_dict(self) -> dict[str, float]:
        return {s.formula: f for s, f in zip(SPECIES, self.fractions)}

    def molar_mass(self) -> float:
        return sum(s.molar_mass * f
                   for s, f in zip(SPECIES, self.fractions))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(f"{s.formula}={f:.3f}"
                          for s, f in zip(SPECIES, self.fractions) if f > 0)
        return f"Composition({parts})"


@dataclass
class Stream:
    """One process stream."""

    molar_flow: float               # mol/s
    composition: Composition
    temperature_c: float
    pressure_kpa: float

    def __post_init__(self) -> None:
        if self.molar_flow < 0:
            raise ValueError(f"negative flow {self.molar_flow}")

    def component_flow(self, formula: str) -> float:
        return self.molar_flow * self.composition[formula]

    def component_flows(self) -> list[float]:
        return [self.molar_flow * f for f in self.composition.fractions]

    def copy(self) -> "Stream":
        # Bypasses the dataclass __init__ (the flow was validated when
        # this stream was built); the composition still re-normalizes
        # exactly as a fresh construction would.
        clone = Stream.__new__(Stream)
        clone.molar_flow = self.molar_flow
        clone.composition = Composition._normalized(self.composition.fractions,
                                                    copy=True)
        clone.temperature_c = self.temperature_c
        clone.pressure_kpa = self.pressure_kpa
        return clone

    @staticmethod
    def empty(temperature_c: float = 25.0,
              pressure_kpa: float = 101.3) -> "Stream":
        return Stream(0.0, Composition._normalized(_PURE_C1, copy=True),
                      temperature_c,
                      pressure_kpa)

    @staticmethod
    def mix(streams: list["Stream"]) -> "Stream":
        """Adiabatic-ish mix: molar-weighted temperature, min pressure."""
        live = [s for s in streams if s.molar_flow > 0]
        if not live:
            return Stream.empty()
        total = 0.0
        for s in live:
            total += s.molar_flow
        flows = [0.0] * N_SPECIES
        temp = 0.0
        for s in live:
            mf = s.molar_flow
            temp += s.temperature_c * mf / total
            fractions = s.composition.fractions
            for i in range(N_SPECIES):
                flows[i] += mf * fractions[i]
        pressure = min(s.pressure_kpa for s in live)
        return Stream(total, Composition._normalized(flows), temp, pressure)
