"""Chemical species, compositions and process streams.

The feed basis matches the paper: "a raw natural gas stream containing N2,
CO2, and C1 through n-C4".  Compositions are mole fractions over the fixed
species list; streams carry molar flow, composition, temperature and
pressure.  All flows are mol/s, temperatures degC, pressures kPa(a).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Species:
    """One component with the properties the thermo model uses."""

    name: str
    formula: str
    boiling_point_c: float   # normal boiling point
    molar_mass: float        # g/mol


SPECIES: tuple[Species, ...] = (
    Species("nitrogen", "N2", -195.8, 28.01),
    Species("carbon-dioxide", "CO2", -78.5, 44.01),
    Species("methane", "C1", -161.5, 16.04),
    Species("ethane", "C2", -88.6, 30.07),
    Species("propane", "C3", -42.1, 44.10),
    Species("isobutane", "iC4", -11.7, 58.12),
    Species("n-butane", "nC4", -0.5, 58.12),
)

SPECIES_INDEX: dict[str, int] = {s.formula: i for i, s in enumerate(SPECIES)}

N_SPECIES = len(SPECIES)


class Composition:
    """Mole fractions over :data:`SPECIES`, kept normalized."""

    __slots__ = ("fractions",)

    def __init__(self, fractions: dict[str, float] | list[float]) -> None:
        if isinstance(fractions, dict):
            values = [0.0] * N_SPECIES
            for formula, fraction in fractions.items():
                if formula not in SPECIES_INDEX:
                    raise KeyError(f"unknown species {formula!r}")
                values[SPECIES_INDEX[formula]] = fraction
        else:
            if len(fractions) != N_SPECIES:
                raise ValueError(
                    f"expected {N_SPECIES} fractions, got {len(fractions)}")
            values = list(fractions)
        if any(v < 0 for v in values):
            raise ValueError(f"negative mole fraction in {values}")
        total = sum(values)
        if total <= 0:
            raise ValueError("composition must have positive total")
        self.fractions = [v / total for v in values]

    def __getitem__(self, formula: str) -> float:
        return self.fractions[SPECIES_INDEX[formula]]

    def as_dict(self) -> dict[str, float]:
        return {s.formula: f for s, f in zip(SPECIES, self.fractions)}

    def molar_mass(self) -> float:
        return sum(s.molar_mass * f
                   for s, f in zip(SPECIES, self.fractions))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(f"{s.formula}={f:.3f}"
                          for s, f in zip(SPECIES, self.fractions) if f > 0)
        return f"Composition({parts})"


@dataclass
class Stream:
    """One process stream."""

    molar_flow: float               # mol/s
    composition: Composition
    temperature_c: float
    pressure_kpa: float

    def __post_init__(self) -> None:
        if self.molar_flow < 0:
            raise ValueError(f"negative flow {self.molar_flow}")

    def component_flow(self, formula: str) -> float:
        return self.molar_flow * self.composition[formula]

    def component_flows(self) -> list[float]:
        return [self.molar_flow * f for f in self.composition.fractions]

    def copy(self) -> "Stream":
        return Stream(self.molar_flow, Composition(self.composition.fractions),
                      self.temperature_c, self.pressure_kpa)

    @staticmethod
    def empty(temperature_c: float = 25.0,
              pressure_kpa: float = 101.3) -> "Stream":
        return Stream(0.0, Composition({"C1": 1.0}), temperature_c,
                      pressure_kpa)

    @staticmethod
    def mix(streams: list["Stream"]) -> "Stream":
        """Adiabatic-ish mix: molar-weighted temperature, min pressure."""
        live = [s for s in streams if s.molar_flow > 0]
        if not live:
            return Stream.empty()
        total = sum(s.molar_flow for s in live)
        flows = [0.0] * N_SPECIES
        temp = 0.0
        for s in live:
            temp += s.temperature_c * s.molar_flow / total
            for i, f in enumerate(s.component_flows()):
                flows[i] += f
        pressure = min(s.pressure_kpa for s in live)
        return Stream(total, Composition(flows), temp, pressure)
