"""Hardware-in-loop bridge: plant <-> ModBus process image <-> radio.

Mirrors the paper's rig (Fig. 5): Unisim runs on a workstation, a gateway
FireFly node speaks ModBus to it, and sensor/controller/actuator nodes reach
the gateway over RT-Link.  Here:

- the :class:`HilBridge` steps the plant on the simulation clock and syncs
  the ModBus :class:`~repro.net.modbus.ProcessImage` both ways through a
  :class:`~repro.net.modbus.ModbusSerialLink` (with its transaction
  latency);
- sensor registers carry plant PVs to the radio side; holding registers
  carry actuation commands back.

Register map (16-bit, scaled):
    100 + i : sensor registers, in declaration order
    200 + j : actuator registers, in declaration order
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.modbus import ModbusSerialLink, ProcessImage
from repro.plant.gas_plant import NaturalGasPlant
from repro.sim.clock import MS, SEC
from repro.sim.engine import Engine

SENSOR_BASE_ADDRESS = 100
ACTUATOR_BASE_ADDRESS = 200


@dataclass(frozen=True)
class RegisterBinding:
    """One plant signal bound to one ModBus register."""

    address: int
    signal: str
    lo: float
    hi: float


# Engineering ranges for register scaling.
_SENSOR_RANGES = {
    "lts_level_pct": (0.0, 100.0),
    "sep_liq_flow": (0.0, 50.0),
    "lts_liq_flow": (0.0, 120.0),
    "tower_feed_flow": (0.0, 150.0),
    "inlet_sep_level_pct": (0.0, 100.0),
    "chiller_temp_c": (-50.0, 50.0),
    "sales_pressure_kpa": (0.0, 8000.0),
    "deprop_drum_level_pct": (0.0, 100.0),
    "deprop_sump_level_pct": (0.0, 100.0),
    "deprop_pressure_kpa": (0.0, 4000.0),
    "deprop_temp_c": (0.0, 200.0),
    "lts_valve_pct": (0.0, 100.0),
}

_ACTUATOR_RANGES = {
    "lts_liquid_valve_pct": (0.0, 100.0),
    "inlet_sep_valve_pct": (0.0, 100.0),
    "chiller_duty_pct": (0.0, 100.0),
    "sales_valve_pct": (0.0, 100.0),
    "deprop_distillate_valve_pct": (0.0, 100.0),
    "deprop_bottoms_valve_pct": (0.0, 100.0),
    "deprop_gas_valve_pct": (0.0, 100.0),
    "deprop_reboil_duty_pct": (0.0, 100.0),
}


class HilBridge:
    """Steps the plant inside the discrete-event simulation and keeps the
    ModBus process image synchronized with it."""

    def __init__(self, engine: Engine, plant: NaturalGasPlant,
                 plant_dt_ticks: int = 500 * MS,
                 modbus_transaction_ticks: int = 5 * MS) -> None:
        self.engine = engine
        self.plant = plant
        self.plant_dt_ticks = plant_dt_ticks
        self.image = ProcessImage()
        self.link = ModbusSerialLink(engine, self.image,
                                     modbus_transaction_ticks)
        self.sensor_bindings: dict[str, RegisterBinding] = {}
        self.actuator_bindings: dict[str, RegisterBinding] = {}
        self._address_to_actuator: dict[int, RegisterBinding] = {}
        self._define_registers()
        self.image.on_write(self._on_register_write)
        self.steps_taken = 0
        self._running = False
        # Stale-callback guard: every start()/stop() bumps the generation
        # and the recurring step event carries the generation it was armed
        # with, so a bridge stopped (or stopped-and-restarted) mid-flight
        # never double-steps the plant from a stranded chain.
        self._generation = 0
        # Prebound (address, raw sensor tap) pairs in publish order: the
        # per-step PV sweep reads through these instead of name-resolving
        # every signal on every step.
        self._sensor_taps = [
            (binding.address, self.plant.flowsheet.sensor_tap(signal))
            for signal, binding in self.sensor_bindings.items()]
        self._plant_dt_sec = self.plant_dt_ticks / SEC

    def _define_registers(self) -> None:
        for i, (signal, (lo, hi)) in enumerate(sorted(_SENSOR_RANGES.items())):
            address = SENSOR_BASE_ADDRESS + i
            binding = RegisterBinding(address, signal, lo, hi)
            self.sensor_bindings[signal] = binding
            initial = self.plant.flowsheet.read(signal)
            self.image.define(address, signal, lo, hi, initial=initial)
        for j, (signal, (lo, hi)) in enumerate(
                sorted(_ACTUATOR_RANGES.items())):
            address = ACTUATOR_BASE_ADDRESS + j
            binding = RegisterBinding(address, signal, lo, hi)
            self.actuator_bindings[signal] = binding
            self._address_to_actuator[address] = binding
            self.image.define(address, signal, lo, hi, initial=0.0)

    # ------------------------------------------------------------------
    def sensor_address(self, signal: str) -> int:
        return self.sensor_bindings[signal].address

    def actuator_address(self, signal: str) -> int:
        return self.actuator_bindings[signal].address

    def read_sensor(self, signal: str) -> float:
        """Read the register copy of a sensor (what the radio side sees)."""
        return self.image.read(self.sensor_address(signal))

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin stepping the plant every ``plant_dt_ticks``."""
        if self._running:
            return
        self._running = True
        self._generation += 1
        self.engine.post(self.plant_dt_ticks, self._step, self._generation)

    def stop(self) -> None:
        """Halt the stepping chain.  The generation bump makes any armed
        step event a no-op even if the bridge is started again before it
        fires."""
        self._running = False
        self._generation += 1

    def _step(self, generation: int) -> None:
        if generation != self._generation or not self._running:
            return
        self.plant.step(self._plant_dt_sec)
        self.steps_taken += 1
        # Publish PVs to the image (one serial transaction's latency, one
        # engine event for the whole batch).
        self.link.write_many_async(
            [(address, float(tap())) for address, tap in self._sensor_taps])
        self.engine.post(self.plant_dt_ticks, self._step, generation)

    def _on_register_write(self, address: int, value: float) -> None:
        binding = self._address_to_actuator.get(address)
        if binding is None:
            return
        self.plant.flowsheet.write(binding.signal, value)
