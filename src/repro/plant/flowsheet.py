"""Dynamic flowsheet solver.

A :class:`Flowsheet` owns an ordered list of units and advances them
sequentially each time step -- upstream first, with recycle loops torn by
one-step lags (units read last step's value of any downstream stream).
Named sensor taps and actuator taps give the HIL bridge and local
controllers a uniform surface.
"""

from __future__ import annotations

from typing import Callable

from repro.plant.units.base import ProcessUnit


_BACKENDS = ("auto", "py", "np")


def _resolve_backend(backend: str) -> str:
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose one of {_BACKENDS}")
    if backend == "np":
        try:
            import numpy  # noqa: F401
        except ImportError as exc:
            raise RuntimeError(
                "backend='np' requires numpy (the 'fast' extra); use "
                "backend='auto' for the pure-python kernels") from exc
    return backend


class Flowsheet:
    """Ordered units + named signal taps.

    ``backend`` selects how the per-step unit sweep runs; every choice
    is bit-identical (held to by the golden digests and the
    backend-conformance tests):

    - ``"py"``: the reference path -- each unit's scalar ``step()``,
      building ``Stream``/``Composition`` objects for every hop.
    - ``"auto"`` (default): fused pure-python kernels where a unit
      provides one (``compile_kernel``); raw fields flow between
      :class:`~repro.plant.ports.StreamPort` cells and streams
      materialize only when a sensor or test asks for one.
    - ``"np"``: the fused kernels with numpy species vectors
      (struct-of-arrays state).  Requires numpy; at single-flowsheet
      width (7 species) per-ufunc dispatch usually loses to the fused
      python loops, so "auto" does not select it -- it exists as the
      conformance anchor and for wide batched sweeps.
    """

    def __init__(self, name: str, backend: str = "auto") -> None:
        self.name = name
        self.backend = _resolve_backend(backend)
        self.units: list[ProcessUnit] = []
        self._sensors: dict[str, Callable[[], float]] = {}
        self._actuators: dict[str, Callable[[float], None]] = {}
        self.time_sec = 0.0
        self.steps = 0
        # Prebound per-unit step callables (fused kernels or bound
        # unit.step methods), rebuilt lazily after add_unit(): the
        # per-step unit sweep is the hottest loop in every HIL run.
        self._unit_steps: tuple[Callable[[float], None], ...] | None = None

    def add_unit(self, unit: ProcessUnit) -> ProcessUnit:
        self.units.append(unit)
        self._unit_steps = None
        return unit

    def add_sensor(self, name: str, fn: Callable[[], float]) -> None:
        if name in self._sensors:
            raise ValueError(f"sensor {name!r} already registered")
        self._sensors[name] = fn

    def add_actuator(self, name: str, fn: Callable[[float], None]) -> None:
        if name in self._actuators:
            raise ValueError(f"actuator {name!r} already registered")
        self._actuators[name] = fn

    # ------------------------------------------------------------------
    def read(self, sensor: str) -> float:
        if sensor not in self._sensors:
            raise KeyError(
                f"no sensor {sensor!r}; have {sorted(self._sensors)}")
        return float(self._sensors[sensor]())

    def write(self, actuator: str, value: float) -> None:
        if actuator not in self._actuators:
            raise KeyError(
                f"no actuator {actuator!r}; have {sorted(self._actuators)}")
        self._actuators[actuator](value)

    def sensor_tap(self, name: str) -> Callable[[], float]:
        """The raw sensor callable -- for hot paths that prebind their
        reads (the HIL bridge's per-step PV publish).  Callers coerce the
        result with ``float()`` exactly as :meth:`read` does."""
        if name not in self._sensors:
            raise KeyError(f"no sensor {name!r}; have {sorted(self._sensors)}")
        return self._sensors[name]

    def actuator_tap(self, name: str) -> Callable[[float], None]:
        """The raw actuator callable (see :meth:`sensor_tap`)."""
        if name not in self._actuators:
            raise KeyError(
                f"no actuator {name!r}; have {sorted(self._actuators)}")
        return self._actuators[name]

    def sensor_names(self) -> list[str]:
        return sorted(self._sensors)

    def actuator_names(self) -> list[str]:
        return sorted(self._actuators)

    # ------------------------------------------------------------------
    def _compiled_steps(self) -> tuple[Callable[[float], None], ...]:
        if self.backend == "py":
            return tuple(u.step for u in self.units)
        np_mod = None
        if self.backend == "np":
            import numpy as np_mod
        compiled = []
        for unit in self.units:
            kernel = unit.compile_kernel(np_mod)
            compiled.append(kernel if kernel is not None else unit.step)
        return tuple(compiled)

    def step(self, dt_sec: float) -> None:
        """Advance every unit by ``dt_sec`` (construction order)."""
        steps = self._unit_steps
        if steps is None:
            steps = self._unit_steps = self._compiled_steps()
        for step in steps:
            step(dt_sec)
        self.time_sec += dt_sec
        self.steps += 1

    def run(self, duration_sec: float, dt_sec: float,
            on_step: Callable[[float], None] | None = None) -> None:
        """Step for ``duration_sec``; ``on_step(time)`` after each step."""
        steps = int(round(duration_sec / dt_sec))
        for _ in range(steps):
            self.step(dt_sec)
            if on_step is not None:
                on_step(self.time_sec)

    def snapshot(self) -> dict[str, float]:
        """All sensor readings at once (stream tables, steady-state checks)."""
        return {name: self.read(name) for name in self.sensor_names()}
