"""Lazy stream cells connecting fused flowsheet kernels.

A :class:`StreamPort` is one unit-output slot that can hold *either* a
materialized :class:`~repro.plant.components.Stream` (the scalar
``step()`` path stores what it built) *or* the raw
``(molar_flow, fractions, temperature, pressure)`` fields a fused
kernel produced.  Downstream kernels read the raw tuple straight off
the cell; a ``Stream`` object is only constructed when somebody
actually asks for one (sensor lambdas, ``stream_table``, tests) -- and
is cached, so repeated reads in the same step materialize once.

Ports are callables returning the materialized stream, so a port *is*
a ``StreamSource`` and can be wired wherever a ``lambda: unit.out``
used to go.
"""

from __future__ import annotations

from repro.plant.components import Composition, Stream, _PURE_C1


class StreamPort:
    """One stream-valued output cell; raw fields or a cached Stream."""

    __slots__ = ("mf", "fr", "t", "p", "stream")

    def __init__(self) -> None:
        self.mf = 0.0
        self.fr = _PURE_C1
        self.t = 25.0
        self.p = 101.3
        self.stream: Stream | None = None

    def __call__(self) -> Stream:
        return self.get()

    def set_stream(self, stream: Stream) -> None:
        """Store a materialized stream (the scalar ``step()`` path)."""
        self.stream = stream

    def set_raw(self, mf: float, fr, t: float, p: float) -> None:
        """Store raw fields from a fused kernel; ``fr`` may be a list
        (pure-python kernels) or a numpy vector (the "np" backend)."""
        self.mf = mf
        self.fr = fr
        self.t = t
        self.p = p
        self.stream = None

    def raw(self):
        """``(molar_flow, fractions, temperature_c, pressure_kpa)``
        without materializing anything."""
        s = self.stream
        if s is None:
            return self.mf, self.fr, self.t, self.p
        return (s.molar_flow, s.composition.fractions, s.temperature_c,
                s.pressure_kpa)

    def molar_flow(self) -> float:
        s = self.stream
        return float(self.mf) if s is None else s.molar_flow

    def get(self) -> Stream:
        """The cell's stream, materialized (and cached) on demand."""
        s = self.stream
        if s is None:
            fr = self.fr
            if type(fr) is list:
                values = list(fr)
            elif hasattr(fr, "tolist"):   # numpy vector -> python floats
                values = fr.tolist()
            else:
                values = list(fr)
            s = Stream.__new__(Stream)
            s.molar_flow = float(self.mf)
            s.composition = Composition._from_fractions(values)
            # A tracking separator's initial empty stream carries
            # temperature None until the first feed arrives; preserve
            # it the way the scalar path does.
            t = self.t
            s.temperature_c = float(t) if t is not None else None
            s.pressure_kpa = float(self.p)
            self.stream = s
        return s

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "stream" if self.stream is not None else "raw"
        return f"StreamPort({state}, mf={self.molar_flow():.3f})"
