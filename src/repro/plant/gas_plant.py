"""The Fig. 4 natural gas plant, with its eight control loops.

Raw gas feeds -> inlet separator -> gas/gas exchanger -> chiller -> LTS;
inlet-separator liquids + LTS liquids -> depropanizer.  Eight controllers,
as in the paper: four top-level (inlet-sep level, **LTS level** -- the case
study's loop -- chiller temperature, sales-gas pressure) and four on the
depropanizer (drum level, sump level, pressure, stage temperature).

Each loop can run on a *local* regulator (plant-side PID, used for every
loop the wireless experiment is not exercising) or be driven externally
through the actuator taps (the HIL bridge / EVM path).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.control.controller import ControlLawConfig, FilteredPidController
from repro.obs import instrument
from repro.plant.components import Composition, Stream
from repro.plant.flowsheet import Flowsheet
from repro.plant.ports import StreamPort
from repro.plant.units.base import ProcessUnit
from repro.plant.units.column import Depropanizer
from repro.plant.units.heat_exchanger import Chiller, GasGasExchanger
from repro.plant.units.mixer import Mixer
from repro.plant.units.separator import TwoPhaseSeparator
from repro.plant.units.valve import ControlValve


class VaporHeader(ProcessUnit):
    """Sales-gas header: pressure integrates inflow minus valve draw."""

    def __init__(self, name: str, inlet, valve: ControlValve,
                 pressure_kpa: float = 3800.0,
                 volume_mol_per_kpa: float = 5.0) -> None:
        super().__init__(name)
        self.inlet = inlet
        self.valve = valve
        self.pressure_kpa = pressure_kpa
        self.volume_mol_per_kpa = volume_mol_per_kpa
        self.outlet_port = StreamPort()
        self.outlet = Stream.empty()

    @property
    def outlet(self) -> Stream:
        return self.outlet_port.get()

    @outlet.setter
    def outlet(self, stream: Stream) -> None:
        self.outlet_port.set_stream(stream)

    def compile_kernel(self, np):
        from repro.plant.kernels import vapor_header_kernel
        return vapor_header_kernel(self, np)

    def step(self, dt_sec: float) -> None:
        self.valve.step(dt_sec)
        inlet = self.inlet()
        out_flow = min(self.valve.requested_flow,
                       inlet.molar_flow
                       + max(0.0, self.pressure_kpa - 1000.0) * 0.05)
        self.pressure_kpa += (inlet.molar_flow - out_flow) * dt_sec \
            / self.volume_mol_per_kpa
        self.pressure_kpa = max(200.0, self.pressure_kpa)
        outlet = inlet.copy() if inlet.molar_flow > 0 else Stream.empty()
        outlet.molar_flow = out_flow
        outlet.pressure_kpa = self.pressure_kpa
        self.outlet = outlet


@dataclass
class ControlLoop:
    """One control loop: PV sensor name, MV actuator name, and tuning."""

    name: str
    pv: str
    mv: str
    config: ControlLawConfig
    nominal_output: float


class NaturalGasPlant:
    """The composed plant.  See module docstring for the topology."""

    LTS_LEVEL_SETPOINT = 50.0
    PLANT_DT_SEC = 0.5

    def __init__(self, local_control_dt_sec: float = 0.5,
                 backend: str = "auto") -> None:
        self.local_control_dt_sec = local_control_dt_sec
        self.flowsheet = Flowsheet("natural-gas-plant", backend=backend)
        self._build_units()
        self._register_taps()
        self.loops = self._build_loops()
        self._local_controllers: dict[str, FilteredPidController] = {}
        self._local_enabled: set[str] = set()
        # Prebound (controller.step, pv tap, mv tap) triples for every
        # enabled loop, rebuilt lazily when the enabled set changes: the
        # regulator sweep runs every plant step and name-resolved taps
        # dominated it.
        self._local_compiled: list[tuple] | None = None
        self._obs = instrument.plant_meters()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_units(self) -> None:
        fs = self.flowsheet
        self.feed1 = Stream(80.0, Composition({
            "N2": 0.02, "CO2": 0.02, "C1": 0.70, "C2": 0.12,
            "C3": 0.08, "iC4": 0.03, "nC4": 0.03}), 25.0, 4000.0)
        self.feed2 = Stream(40.0, Composition({
            "N2": 0.01, "CO2": 0.03, "C1": 0.60, "C2": 0.15,
            "C3": 0.12, "iC4": 0.045, "nC4": 0.045}), 25.0, 4000.0)
        self.feed_mixer = fs.add_unit(Mixer(
            "feed-mixer", [lambda: self.feed1, lambda: self.feed2]))
        self.inlet_sep_valve = ControlValve("inlet-sep-liquid-valve",
                                            cv_mol_s=55.0,
                                            initial_opening_pct=12.0)
        self.inlet_sep = fs.add_unit(TwoPhaseSeparator(
            "InletSep", feed=lambda: self.feed_mixer.outlet,
            liquid_valve=self.inlet_sep_valve, temperature_c=25.0,
            pressure_kpa=4000.0, holdup_capacity_mol=20000.0,
            initial_level_pct=50.0, blow_by_fraction=0.3,
            drain_backpressure=self._liquid_header_backpressure))
        # Gas/gas exchanger: cold side reads the LTS overhead with a
        # one-step lag (the LTS is stepped after the exchanger).
        self.gas_gas = fs.add_unit(GasGasExchanger(
            "gas-gas-exchanger", hot_inlet=lambda: self.inlet_sep.vapor_out,
            cold_inlet=lambda: self.lts.vapor_out, effectiveness=0.65))
        self.chiller = fs.add_unit(Chiller(
            "chiller", inlet=lambda: self.gas_gas.hot_out,
            t_min_c=-35.0, t_max_c=10.0, initial_duty_pct=66.7,
            tau_sec=20.0))
        self.lts_valve = ControlValve("lts-liquid-valve", cv_mol_s=110.4,
                                      initial_opening_pct=11.5,
                                      actuator_tau_sec=2.0)
        self.lts = fs.add_unit(TwoPhaseSeparator(
            "LTS", feed=lambda: self.chiller.outlet,
            liquid_valve=self.lts_valve, temperature_c=None,
            pressure_kpa=3900.0, holdup_capacity_mol=12000.0,
            initial_level_pct=50.0, blow_by_fraction=0.6))
        self.sales_valve = ControlValve("sales-gas-valve", cv_mol_s=200.0,
                                        initial_opening_pct=50.0)
        self.sales_header = fs.add_unit(VaporHeader(
            "sales-header", inlet=lambda: self.gas_gas.cold_out,
            valve=self.sales_valve))
        self.liquids_mixer = fs.add_unit(Mixer(
            "liquids-mixer", [lambda: self.inlet_sep.liquid_out,
                              lambda: self.lts.liquid_out]))
        self.distillate_valve = ControlValve("deprop-distillate-valve",
                                             cv_mol_s=30.0,
                                             initial_opening_pct=23.0)
        self.bottoms_valve = ControlValve("deprop-bottoms-valve",
                                          cv_mol_s=40.0,
                                          initial_opening_pct=21.0)
        self.deprop_gas_valve = ControlValve("deprop-gas-valve",
                                             cv_mol_s=20.0,
                                             initial_opening_pct=16.0)
        self.depropanizer = fs.add_unit(Depropanizer(
            "DePropanizer", feed=lambda: self.liquids_mixer.outlet,
            distillate_valve=self.distillate_valve,
            bottoms_valve=self.bottoms_valve,
            overhead_gas_valve=self.deprop_gas_valve))
        # Port-direct wiring: the lambdas above keep construction order
        # flexible (the exchanger's cold side references the LTS before
        # it exists); with every unit built, point the inputs straight
        # at the upstream output ports so the fused kernels read raw
        # fields with no stream materialization.  The feed mixer keeps
        # its lambdas -- feed1/feed2 are reassignable plain streams.
        self.inlet_sep.feed = self.feed_mixer.outlet_port
        self.gas_gas.hot_inlet = self.inlet_sep.vapor_out_port
        self.gas_gas.cold_inlet = self.lts.vapor_out_port
        self.chiller.inlet = self.gas_gas.hot_out_port
        self.lts.feed = self.chiller.outlet_port
        self.sales_header.inlet = self.gas_gas.cold_out_port
        self.liquids_mixer.inlets = [self.inlet_sep.liquid_out_port,
                                     self.lts.liquid_out_port]
        self.depropanizer.feed = self.liquids_mixer.outlet_port

    def _liquid_header_backpressure(self) -> float:
        """Shared liquid-header coupling: LTS gas blow-by pressures up the
        header and chokes the inlet separator's drainage -- the mechanism
        behind the SepLiq disturbance in Fig. 6(b)."""
        nominal = 25.0
        excess = max(0.0,
                     self.liquids_mixer.outlet_port.molar_flow() - nominal)
        return 1.0 / (1.0 + 0.012 * excess)

    def _register_taps(self) -> None:
        fs = self.flowsheet
        # The four Fig. 6(b) series.
        fs.add_sensor("lts_level_pct", lambda: self.lts.level_pct)
        fs.add_sensor("sep_liq_flow",
                      lambda: self.inlet_sep.liquid_out.molar_flow)
        fs.add_sensor("lts_liq_flow",
                      lambda: self.lts.liquid_out.molar_flow)
        fs.add_sensor("tower_feed_flow",
                      lambda: self.liquids_mixer.outlet.molar_flow)
        # Remaining loop PVs and diagnostics.
        fs.add_sensor("inlet_sep_level_pct", lambda: self.inlet_sep.level_pct)
        fs.add_sensor("chiller_temp_c",
                      lambda: self.chiller.outlet_temperature_c)
        fs.add_sensor("sales_pressure_kpa",
                      lambda: self.sales_header.pressure_kpa)
        fs.add_sensor("deprop_drum_level_pct",
                      lambda: self.depropanizer.drum_level_pct)
        fs.add_sensor("deprop_sump_level_pct",
                      lambda: self.depropanizer.sump_level_pct)
        fs.add_sensor("deprop_pressure_kpa",
                      lambda: self.depropanizer.pressure_kpa)
        fs.add_sensor("deprop_temp_c", lambda: self.depropanizer.temperature_c)
        fs.add_sensor("bottoms_c3_frac",
                      lambda: self.depropanizer.bottoms_propane_fraction())
        fs.add_sensor("lts_valve_pct", lambda: self.lts_valve.opening_pct)
        fs.add_sensor("sales_gas_flow",
                      lambda: self.sales_header.outlet.molar_flow)
        # Actuators (MVs).
        fs.add_actuator("lts_liquid_valve_pct", self.lts_valve.set_command)
        fs.add_actuator("inlet_sep_valve_pct",
                        self.inlet_sep_valve.set_command)
        fs.add_actuator("chiller_duty_pct", self.chiller.set_duty)
        fs.add_actuator("sales_valve_pct", self.sales_valve.set_command)
        fs.add_actuator("deprop_distillate_valve_pct",
                        self.distillate_valve.set_command)
        fs.add_actuator("deprop_bottoms_valve_pct",
                        self.bottoms_valve.set_command)
        fs.add_actuator("deprop_gas_valve_pct",
                        self.deprop_gas_valve.set_command)
        fs.add_actuator("deprop_reboil_duty_pct",
                        self.depropanizer.set_reboil_duty)

    def _build_loops(self) -> list[ControlLoop]:
        dt = self.local_control_dt_sec
        return [
            ControlLoop(
                name="lts_level", pv="lts_level_pct",
                mv="lts_liquid_valve_pct",
                config=ControlLawConfig(
                    kp=-3.0, ki=-0.01, kd=0.0, dt_sec=dt,
                    setpoint=self.LTS_LEVEL_SETPOINT, filter_cutoff_hz=0.05,
                    out_min=0.0, out_max=100.0,
                    integral_min=-10000.0, integral_max=10000.0),
                nominal_output=11.48),
            ControlLoop(
                name="inlet_sep_level", pv="inlet_sep_level_pct",
                mv="inlet_sep_valve_pct",
                config=ControlLawConfig(
                    kp=-3.0, ki=-0.008, kd=0.0, dt_sec=dt, setpoint=50.0,
                    filter_cutoff_hz=0.05, integral_min=-10000.0,
                    integral_max=10000.0),
                nominal_output=12.0),
            ControlLoop(
                name="chiller_temp", pv="chiller_temp_c",
                mv="chiller_duty_pct",
                config=ControlLawConfig(
                    kp=-4.0, ki=-0.15, kd=0.0, dt_sec=dt, setpoint=-20.0,
                    filter_cutoff_hz=0.1, integral_min=-5000.0,
                    integral_max=5000.0),
                nominal_output=66.7),
            ControlLoop(
                name="sales_pressure", pv="sales_pressure_kpa",
                mv="sales_valve_pct",
                config=ControlLawConfig(
                    kp=-0.08, ki=-0.01, kd=0.0, dt_sec=dt, setpoint=3800.0,
                    filter_cutoff_hz=0.1, integral_min=-100000.0,
                    integral_max=100000.0),
                nominal_output=50.0),
            ControlLoop(
                name="deprop_drum_level", pv="deprop_drum_level_pct",
                mv="deprop_distillate_valve_pct",
                config=ControlLawConfig(
                    kp=-2.0, ki=-0.008, kd=0.0, dt_sec=dt, setpoint=50.0,
                    filter_cutoff_hz=0.05, integral_min=-10000.0,
                    integral_max=10000.0),
                nominal_output=23.0),
            ControlLoop(
                name="deprop_sump_level", pv="deprop_sump_level_pct",
                mv="deprop_bottoms_valve_pct",
                config=ControlLawConfig(
                    kp=-2.0, ki=-0.008, kd=0.0, dt_sec=dt, setpoint=50.0,
                    filter_cutoff_hz=0.05, integral_min=-10000.0,
                    integral_max=10000.0),
                nominal_output=21.0),
            ControlLoop(
                name="deprop_pressure", pv="deprop_pressure_kpa",
                mv="deprop_gas_valve_pct",
                config=ControlLawConfig(
                    kp=-0.2, ki=-0.02, kd=0.0, dt_sec=dt, setpoint=1500.0,
                    filter_cutoff_hz=0.1, integral_min=-50000.0,
                    integral_max=50000.0),
                nominal_output=16.0),
            ControlLoop(
                name="deprop_temp", pv="deprop_temp_c",
                mv="deprop_reboil_duty_pct",
                config=ControlLawConfig(
                    kp=3.0, ki=0.1, kd=0.0, dt_sec=dt, setpoint=95.0,
                    filter_cutoff_hz=0.1, integral_min=-5000.0,
                    integral_max=5000.0),
                nominal_output=50.0),
        ]

    def loop(self, name: str) -> ControlLoop:
        for loop in self.loops:
            if loop.name == name:
                return loop
        raise KeyError(f"no loop {name!r}; have {[l.name for l in self.loops]}")

    # ------------------------------------------------------------------
    # Local (plant-side) regulators
    # ------------------------------------------------------------------
    def enable_local_control(self, exclude: tuple[str, ...] = ()) -> None:
        """Run plant-side regulators for every loop not in ``exclude``.

        The HIL experiments exclude the loop(s) the wireless EVM controls.
        """
        for loop in self.loops:
            if loop.name in exclude:
                self._local_enabled.discard(loop.name)
                continue
            if loop.name not in self._local_controllers:
                pv = self.flowsheet.read(loop.pv)
                controller = FilteredPidController(
                    loop.config,
                    list(loop.config.initial_memory(pv, loop.nominal_output)))
                self._local_controllers[loop.name] = controller
            self._local_enabled.add(loop.name)
        self._local_compiled = None

    def disable_local_control(self, name: str) -> None:
        self._local_enabled.discard(name)
        self._local_compiled = None

    def _run_local_controllers(self) -> None:
        compiled = self._local_compiled
        if compiled is None:
            compiled = self._local_compiled = [
                (self._local_controllers[loop.name].compiled_step(),
                 self.flowsheet.sensor_tap(loop.pv),
                 self.flowsheet.actuator_tap(loop.mv))
                for loop in self.loops if loop.name in self._local_enabled]
        for ctrl_step, pv_tap, mv_tap in compiled:
            mv_tap(ctrl_step(float(pv_tap())))

    # ------------------------------------------------------------------
    # Advancing
    # ------------------------------------------------------------------
    def step(self, dt_sec: float | None = None) -> None:
        dt = dt_sec if dt_sec is not None else self.PLANT_DT_SEC
        obs = self._obs
        if obs is None:
            self._run_local_controllers()
            self.flowsheet.step(dt)
            return
        start = time.perf_counter()
        self._run_local_controllers()
        self.flowsheet.step(dt)
        obs.steps.inc()
        obs.step_seconds.observe(time.perf_counter() - start)

    def settle(self, duration_sec: float = 1500.0) -> dict[str, float]:
        """Run to (near) steady state under full local control."""
        self.enable_local_control()
        steps = int(duration_sec / self.local_control_dt_sec)
        for _ in range(steps):
            self.step(self.local_control_dt_sec)
        return self.flowsheet.snapshot()

    def stream_table(self) -> dict[str, dict[str, float]]:
        """Key streams for the Fig. 4 reproduction."""
        def describe(stream: Stream) -> dict[str, float]:
            return {
                "molar_flow": round(stream.molar_flow, 3),
                "temperature_c": round(stream.temperature_c, 2),
                "pressure_kpa": round(stream.pressure_kpa, 1),
                "C3_frac": round(stream.composition["C3"], 4),
            }

        return {
            "feed": describe(self.feed_mixer.outlet),
            "inlet_sep_vapor": describe(self.inlet_sep.vapor_out),
            "inlet_sep_liquid": describe(self.inlet_sep.liquid_out),
            "chiller_out": describe(self.chiller.outlet),
            "lts_vapor": describe(self.lts.vapor_out),
            "lts_liquid": describe(self.lts.liquid_out),
            "tower_feed": describe(self.liquids_mixer.outlet),
            "sales_gas": describe(self.sales_header.outlet),
            "distillate": describe(self.depropanizer.distillate_out),
            "bottoms": describe(self.depropanizer.bottoms_out),
        }
