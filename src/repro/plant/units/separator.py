"""Two-phase separators with liquid holdup dynamics.

The heart of the case study: the Low-Temperature Separator's liquid level is
the controlled variable, and its liquid outlet valve is the manipulated
variable.  The model:

- flash the feed at the vessel's (T, P) into vapor and liquid;
- vapor leaves immediately through the overhead;
- liquid accumulates in a per-component molar holdup;
- the liquid outlet valve drains the holdup, limited by what is there;
- when the vessel runs dry while the valve is open, *gas blow-by* passes
  vapor into the liquid header -- the mechanism that couples the LTS fault
  into the separator and tower-feed flows in Fig. 6(b).
"""

from __future__ import annotations

from repro.plant.components import Composition, N_SPECIES, Stream
from repro.plant.ports import StreamPort
from repro.plant.thermo import flash
from repro.plant.units.base import ProcessUnit, StreamSource
from repro.plant.units.valve import ControlValve


class TwoPhaseSeparator(ProcessUnit):
    """Flash drum with level dynamics and a valve on the liquid outlet."""

    def __init__(
        self,
        name: str,
        feed: StreamSource,
        liquid_valve: ControlValve,
        temperature_c: float | None,
        pressure_kpa: float,
        holdup_capacity_mol: float,
        initial_level_pct: float = 50.0,
        blow_by_fraction: float = 0.5,
        drain_backpressure=None,
    ) -> None:
        """``temperature_c=None`` makes the vessel track its feed
        temperature (the LTS operates at whatever the chiller delivers).

        ``drain_backpressure`` is an optional callable returning a 0..1
        multiplier on the liquid valve's deliverable flow -- vessels draining
        into a shared liquid header see reduced flow when the header is
        pressured up (e.g. by another vessel's gas blow-by).
        """
        super().__init__(name)
        if holdup_capacity_mol <= 0:
            raise ValueError("holdup capacity must be positive")
        self.feed = feed
        self.liquid_valve = liquid_valve
        self.drain_backpressure = drain_backpressure
        self._fixed_temperature_c = temperature_c
        self.temperature_c = (temperature_c if temperature_c is not None
                              else 25.0)
        self.pressure_kpa = pressure_kpa
        self.holdup_capacity_mol = holdup_capacity_mol
        self.blow_by_fraction = blow_by_fraction
        # Per-component liquid holdup; composition starts as a placeholder
        # and is replaced by condensed liquid as the simulation runs.
        initial_total = holdup_capacity_mol * initial_level_pct / 100.0
        self.holdup = [0.0] * N_SPECIES
        self._seed_holdup(initial_total)
        self.vapor_out_port = StreamPort()
        self.liquid_out_port = StreamPort()
        self.vapor_out = Stream.empty(temperature_c, pressure_kpa)
        self.liquid_out = Stream.empty(temperature_c, pressure_kpa)
        self.blow_by_flow = 0.0
        self.overflow_mol = 0.0

    def _seed_holdup(self, total: float) -> None:
        if total <= 0:
            return
        # Seed with a generic heavy-liquid composition; flushed quickly.
        seed = Composition({"C3": 0.6, "iC4": 0.2, "nC4": 0.2})
        self.holdup = [total * f for f in seed.fractions]

    # ------------------------------------------------------------------
    # Stream outputs live in ports so the fused kernels can hand raw
    # fields downstream; the scalar path stores streams through the
    # setters and nothing changes shape for callers.
    @property
    def vapor_out(self) -> Stream:
        return self.vapor_out_port.get()

    @vapor_out.setter
    def vapor_out(self, stream: Stream) -> None:
        self.vapor_out_port.set_stream(stream)

    @property
    def liquid_out(self) -> Stream:
        return self.liquid_out_port.get()

    @liquid_out.setter
    def liquid_out(self, stream: Stream) -> None:
        self.liquid_out_port.set_stream(stream)

    def compile_kernel(self, np):
        from repro.plant.kernels import separator_kernel
        return separator_kernel(self, np)

    # ------------------------------------------------------------------
    @property
    def holdup_mol(self) -> float:
        return sum(self.holdup)

    @property
    def level_pct(self) -> float:
        return 100.0 * self.holdup_mol / self.holdup_capacity_mol

    def step(self, dt_sec: float) -> None:
        self.liquid_valve.step(dt_sec)
        feed = self.feed()
        if self._fixed_temperature_c is None:
            self.temperature_c = feed.temperature_c
        vapor, liquid = flash(feed, self.temperature_c, self.pressure_kpa)
        # Condensed liquid accumulates (inlined component flows; the
        # arithmetic matches `component_flows()` element for element).
        holdup = self.holdup
        liquid_mf = liquid.molar_flow
        liquid_fr = liquid.composition.fractions
        for i in range(N_SPECIES):
            holdup[i] += (liquid_mf * liquid_fr[i]) * dt_sec
        # Drain through the valve, limited by available liquid and any
        # back-pressure on the downstream liquid header.
        requested = self.liquid_valve.requested_flow
        if self.drain_backpressure is not None:
            requested *= max(0.0, min(1.0, self.drain_backpressure()))
        holdup_total = self.holdup_mol
        available_rate = holdup_total / dt_sec
        drained = min(requested, available_rate)
        if drained > 0 and holdup_total > 0:
            fraction = min(1.0, drained * dt_sec / holdup_total)
            out_flows = [h * fraction / dt_sec for h in holdup]
            self.holdup = [h * (1.0 - fraction) for h in holdup]
            out_total = sum(out_flows)
            self.liquid_out = Stream(out_total,
                                     Composition._normalized(out_flows)
                                     if out_total > 1e-12
                                     else liquid.composition,
                                     self.temperature_c, self.pressure_kpa)
        else:
            self.liquid_out = Stream.empty(self.temperature_c,
                                           self.pressure_kpa)
        # Gas blow-by: unmet valve demand pulls vapor into the liquid line.
        shortfall = max(0.0, requested - drained)
        self.blow_by_flow = shortfall * self.blow_by_fraction
        if self.blow_by_flow > 1e-9 and vapor.molar_flow > 1e-9:
            taken = min(self.blow_by_flow, vapor.molar_flow)
            self.blow_by_flow = taken
            blow_by = Stream(taken, vapor.composition, self.temperature_c,
                             self.pressure_kpa)
            vapor = Stream(vapor.molar_flow - taken, vapor.composition,
                           vapor.temperature_c, vapor.pressure_kpa)
            self.liquid_out = Stream.mix([self.liquid_out, blow_by])
        else:
            self.blow_by_flow = 0.0
        # Overflow protection: liquid carried over with the vapor.
        if self.holdup_mol > self.holdup_capacity_mol:
            excess = self.holdup_mol - self.holdup_capacity_mol
            scale = self.holdup_capacity_mol / self.holdup_mol
            self.holdup = [h * scale for h in self.holdup]
            self.overflow_mol += excess
        self.vapor_out = vapor
