"""Stream mixers."""

from __future__ import annotations

from repro.plant.components import Stream
from repro.plant.ports import StreamPort
from repro.plant.units.base import ProcessUnit, StreamSource


class Mixer(ProcessUnit):
    """Combines any number of inlet streams into :attr:`outlet`."""

    def __init__(self, name: str, inlets: list[StreamSource]) -> None:
        super().__init__(name)
        self.inlets = list(inlets)
        self.outlet_port = StreamPort()
        self.outlet = Stream.empty()

    def add_inlet(self, source: StreamSource) -> None:
        self.inlets.append(source)

    @property
    def outlet(self) -> Stream:
        return self.outlet_port.get()

    @outlet.setter
    def outlet(self, stream: Stream) -> None:
        self.outlet_port.set_stream(stream)

    def compile_kernel(self, np):
        from repro.plant.kernels import mixer_kernel
        return mixer_kernel(self, np)

    def step(self, dt_sec: float) -> None:
        self.outlet = Stream.mix([source() for source in self.inlets])
