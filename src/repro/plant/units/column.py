"""The depropanizer distillation column (lumped model).

Unisim runs a rigorous tray-by-tray column; the EVM only needs four
realistic control handles, so we model the column as a component splitter
with holdup and pressure dynamics:

- **split**: C3 and lighter report to the overhead with high recovery
  (sharpened by reboiler temperature), butanes to the bottoms -- yielding
  the "low-propane-content bottoms product" of the paper;
- **reflux drum** and **sump** holdups integrate the internal flows, drained
  by the distillate and bottoms valves (drum/sump level loops);
- **pressure** integrates vapor generation minus the overhead gas valve
  draw (pressure loop);
- **stage temperature** first-order toward a reboiler-duty target
  (temperature loop).
"""

from __future__ import annotations

from repro.plant.components import Composition, N_SPECIES, SPECIES, Stream
from repro.plant.ports import StreamPort
from repro.plant.units.base import ProcessUnit, StreamSource
from repro.plant.units.valve import ControlValve

# Base recovery of each species to the overhead (distillate) at nominal
# reboil; lighter than propane go essentially completely overhead.
_BASE_OVERHEAD_RECOVERY = {
    "N2": 1.0, "CO2": 0.995, "C1": 0.999, "C2": 0.985,
    "C3": 0.955, "iC4": 0.06, "nC4": 0.02,
}

# Index-aligned views for the per-step split sweep (the dict/formula
# lookups dominated `step`); the math stays in `_overhead_recovery`'s
# exact operation order.
from repro.plant.components import SPECIES_INDEX as _SPECIES_INDEX  # noqa: E402

_BASE_RECOVERY = tuple(_BASE_OVERHEAD_RECOVERY[s.formula] for s in SPECIES)
_C3_I = _SPECIES_INDEX["C3"]
_IC4_I = _SPECIES_INDEX["iC4"]
_NC4_I = _SPECIES_INDEX["nC4"]


class Depropanizer(ProcessUnit):
    """Splitter column with drum/sump/pressure/temperature dynamics."""

    def __init__(
        self,
        name: str,
        feed: StreamSource,
        distillate_valve: ControlValve,
        bottoms_valve: ControlValve,
        overhead_gas_valve: ControlValve,
        drum_capacity_mol: float = 6000.0,
        sump_capacity_mol: float = 9000.0,
        pressure_kpa: float = 1500.0,
        pressure_volume_mol_per_kpa: float = 3.0,
        temperature_c: float = 95.0,
        reboiler_tau_sec: float = 30.0,
    ) -> None:
        super().__init__(name)
        self.feed = feed
        self.distillate_valve = distillate_valve
        self.bottoms_valve = bottoms_valve
        self.overhead_gas_valve = overhead_gas_valve
        self.drum_capacity_mol = drum_capacity_mol
        self.sump_capacity_mol = sump_capacity_mol
        self.drum_holdup = [0.0] * N_SPECIES
        self.sump_holdup = [0.0] * N_SPECIES
        self._seed()
        self.pressure_kpa = pressure_kpa
        self.pressure_volume_mol_per_kpa = pressure_volume_mol_per_kpa
        self.temperature_c = temperature_c
        self.reboil_duty_pct = 50.0
        self.reboiler_tau_sec = reboiler_tau_sec
        self.distillate_out_port = StreamPort()
        self.bottoms_out_port = StreamPort()
        self.overhead_gas_out_port = StreamPort()
        self.distillate_out = Stream.empty()
        self.bottoms_out = Stream.empty()
        self.overhead_gas_out = Stream.empty()

    def _seed(self) -> None:
        light = Composition({"C2": 0.25, "C3": 0.70, "iC4": 0.05})
        heavy = Composition({"C3": 0.04, "iC4": 0.46, "nC4": 0.50})
        for i, f in enumerate(light.fractions):
            self.drum_holdup[i] = 0.5 * self.drum_capacity_mol * f
        for i, f in enumerate(heavy.fractions):
            self.sump_holdup[i] = 0.5 * self.sump_capacity_mol * f

    # ------------------------------------------------------------------
    # Stream outputs (port-backed; see TwoPhaseSeparator)
    # ------------------------------------------------------------------
    @property
    def distillate_out(self) -> Stream:
        return self.distillate_out_port.get()

    @distillate_out.setter
    def distillate_out(self, stream: Stream) -> None:
        self.distillate_out_port.set_stream(stream)

    @property
    def bottoms_out(self) -> Stream:
        return self.bottoms_out_port.get()

    @bottoms_out.setter
    def bottoms_out(self, stream: Stream) -> None:
        self.bottoms_out_port.set_stream(stream)

    @property
    def overhead_gas_out(self) -> Stream:
        return self.overhead_gas_out_port.get()

    @overhead_gas_out.setter
    def overhead_gas_out(self, stream: Stream) -> None:
        self.overhead_gas_out_port.set_stream(stream)

    def compile_kernel(self, np):
        from repro.plant.kernels import column_kernel
        return column_kernel(self, np)

    # ------------------------------------------------------------------
    # Control handles (PVs and MVs)
    # ------------------------------------------------------------------
    @property
    def drum_level_pct(self) -> float:
        return 100.0 * sum(self.drum_holdup) / self.drum_capacity_mol

    @property
    def sump_level_pct(self) -> float:
        return 100.0 * sum(self.sump_holdup) / self.sump_capacity_mol

    def set_reboil_duty(self, duty_pct: float) -> None:
        self.reboil_duty_pct = min(100.0, max(0.0, float(duty_pct)))

    # ------------------------------------------------------------------
    def _overhead_recovery(self, formula: str) -> float:
        """Recovery sharpens with stage temperature (reboil effect)."""
        base = _BASE_OVERHEAD_RECOVERY[formula]
        # +/-10 degC around 95 shifts C3/C4 recovery a few points.
        shift = (self.temperature_c - 95.0) / 10.0 * 0.02
        if formula in ("C3",):
            return min(0.999, max(0.5, base + shift))
        if formula in ("iC4", "nC4"):
            return min(0.5, max(0.0, base + shift))
        return base

    def step(self, dt_sec: float) -> None:
        for valve in (self.distillate_valve, self.bottoms_valve,
                      self.overhead_gas_valve):
            valve.step(dt_sec)
        # Reboiler temperature dynamics: duty 0..100 % -> 80..110 degC.
        target = 80.0 + 30.0 * self.reboil_duty_pct / 100.0
        alpha = dt_sec / (self.reboiler_tau_sec + dt_sec)
        self.temperature_c += alpha * (target - self.temperature_c)
        feed = self.feed()
        # Split the feed into internal overhead/bottoms traffic.  The
        # recovery shift is constant across one step, so the sweep runs
        # index-based with `_overhead_recovery`'s arithmetic inlined.
        overhead_flows = [0.0] * N_SPECIES
        bottoms_flows = [0.0] * N_SPECIES
        shift = (self.temperature_c - 95.0) / 10.0 * 0.02
        feed_mf = feed.molar_flow
        feed_fr = feed.composition.fractions
        for i in range(N_SPECIES):
            base = _BASE_RECOVERY[i]
            if i == _C3_I:
                recovery = min(0.999, max(0.5, base + shift))
            elif i == _IC4_I or i == _NC4_I:
                recovery = min(0.5, max(0.0, base + shift))
            else:
                recovery = base
            flow = feed_mf * feed_fr[i]
            overhead_flows[i] = flow * recovery
            bottoms_flows[i] = flow * (1.0 - recovery)
        overhead_total = sum(overhead_flows)
        # Pressure: vapor arrives overhead, leaves via the gas valve.
        gas_out_flow = min(self.overhead_gas_valve.requested_flow,
                           overhead_total * 0.35
                           + max(0.0, self.pressure_kpa - 1200.0) * 0.02)
        self.pressure_kpa += (overhead_total * 0.3 - gas_out_flow) \
            * dt_sec / self.pressure_volume_mol_per_kpa
        self.pressure_kpa = max(200.0, self.pressure_kpa)
        if overhead_total > 1e-9:
            overhead_comp = Composition._normalized(overhead_flows, copy=True)
        else:
            overhead_comp = Composition({"C3": 1.0})
        self.overhead_gas_out = Stream(gas_out_flow, overhead_comp,
                                       40.0, self.pressure_kpa)
        # Condensed overhead (the rest) accumulates in the reflux drum.
        condensed = max(0.0, overhead_total - gas_out_flow)
        if overhead_total > 1e-9:
            for i, flow in enumerate(overhead_flows):
                self.drum_holdup[i] += (flow / overhead_total) * condensed \
                    * dt_sec
        for i, flow in enumerate(bottoms_flows):
            self.sump_holdup[i] += flow * dt_sec
        self.distillate_out = self._drain(self.drum_holdup,
                                          self.distillate_valve, dt_sec,
                                          40.0)
        self.bottoms_out = self._drain(self.sump_holdup, self.bottoms_valve,
                                       dt_sec, self.temperature_c)
        self._clamp(self.drum_holdup, self.drum_capacity_mol)
        self._clamp(self.sump_holdup, self.sump_capacity_mol)

    def _drain(self, holdup: list[float], valve: ControlValve,
               dt_sec: float, temperature_c: float) -> Stream:
        total = sum(holdup)
        requested = valve.requested_flow
        drained = min(requested, total / dt_sec)
        if drained <= 1e-12 or total <= 1e-12:
            return Stream.empty(temperature_c, self.pressure_kpa)
        fraction = min(1.0, drained * dt_sec / total)
        out_flows = [h * fraction / dt_sec for h in holdup]
        for i in range(N_SPECIES):
            holdup[i] *= (1.0 - fraction)
        return Stream(sum(out_flows), Composition._normalized(out_flows),
                      temperature_c,
                      self.pressure_kpa)

    def _clamp(self, holdup: list[float], capacity: float) -> None:
        total = sum(holdup)
        if total > capacity:
            scale = capacity / total
            for i in range(N_SPECIES):
                holdup[i] *= scale

    def bottoms_propane_fraction(self) -> float:
        """C3 mole fraction of the bottoms product (the quality spec)."""
        if self.bottoms_out.molar_flow <= 1e-12:
            total = sum(self.sump_holdup)
            if total <= 0:
                return 0.0
            from repro.plant.components import SPECIES_INDEX
            return self.sump_holdup[SPECIES_INDEX["C3"]] / total
        return self.bottoms_out.composition["C3"]
