"""Control valves.

Linear-trim valve: requested flow = Cv * opening.  The holding unit decides
how much of the request can physically be met (a separator cannot drain
liquid it does not hold).  Opening moves toward its command with a
first-order actuator lag, so actuation steps are smooth.
"""

from __future__ import annotations

from repro.plant.units.base import ProcessUnit


class ControlValve(ProcessUnit):
    """Valve with a linear characteristic and actuator lag."""

    def __init__(self, name: str, cv_mol_s: float,
                 initial_opening_pct: float = 0.0,
                 actuator_tau_sec: float = 2.0) -> None:
        super().__init__(name)
        if cv_mol_s <= 0:
            raise ValueError(f"Cv must be positive, got {cv_mol_s}")
        self.cv_mol_s = cv_mol_s
        self.command_pct = initial_opening_pct
        self.opening_pct = initial_opening_pct
        self.actuator_tau_sec = actuator_tau_sec

    def set_command(self, opening_pct: float) -> None:
        """Command a new opening (the actuator slews toward it).

        The clamp is ``min(100.0, max(0.0, value))`` written as
        conditionals -- bit-identical (two-argument min/max only take
        the second argument on a strict compare) and call-free, since
        every regulator writes its valve every plant step.
        """
        value = float(opening_pct)
        value = value if value > 0.0 else 0.0
        self.command_pct = value if value < 100.0 else 100.0

    def step(self, dt_sec: float) -> None:
        if self.actuator_tau_sec <= 0:
            self.opening_pct = self.command_pct
            return
        alpha = dt_sec / (self.actuator_tau_sec + dt_sec)
        self.opening_pct += alpha * (self.command_pct - self.opening_pct)

    @property
    def requested_flow(self) -> float:
        """mol/s the valve would pass if supply were unlimited."""
        return self.cv_mol_s * self.opening_pct / 100.0
