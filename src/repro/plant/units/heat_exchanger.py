"""Heat exchange: the gas/gas exchanger and the propane chiller.

The gas/gas exchanger pre-cools inlet gas against the LTS's cold overhead
return (effectiveness-NTU with the minimum capacity stream).  The recycle
this creates is torn with a one-step lag: the cold side reads last step's
LTS overhead.

The chiller stands in for the propane refrigeration loop: its outlet
temperature tracks a setpoint through a first-order lag whose command is the
refrigeration duty actuator (0..100 % maps onto an outlet-temperature
range), which gives the chiller-temperature control loop a realistic handle.
"""

from __future__ import annotations

from repro.plant.components import Stream
from repro.plant.ports import StreamPort
from repro.plant.thermo import sensible_duty_watts
from repro.plant.units.base import ProcessUnit, StreamSource


class GasGasExchanger(ProcessUnit):
    """Counter-current effectiveness model; equal molar cp assumed."""

    def __init__(self, name: str, hot_inlet: StreamSource,
                 cold_inlet: StreamSource, effectiveness: float = 0.65,
                 ) -> None:
        super().__init__(name)
        if not 0.0 < effectiveness <= 1.0:
            raise ValueError(
                f"effectiveness must be in (0,1], got {effectiveness}")
        self.hot_inlet = hot_inlet
        self.cold_inlet = cold_inlet
        self.effectiveness = effectiveness
        self.hot_out_port = StreamPort()
        self.cold_out_port = StreamPort()
        self.hot_out = Stream.empty()
        self.cold_out = Stream.empty()
        self.duty_watts = 0.0

    @property
    def hot_out(self) -> Stream:
        return self.hot_out_port.get()

    @hot_out.setter
    def hot_out(self, stream: Stream) -> None:
        self.hot_out_port.set_stream(stream)

    @property
    def cold_out(self) -> Stream:
        return self.cold_out_port.get()

    @cold_out.setter
    def cold_out(self, stream: Stream) -> None:
        self.cold_out_port.set_stream(stream)

    def compile_kernel(self, np):
        from repro.plant.kernels import gasgas_kernel
        return gasgas_kernel(self, np)

    def step(self, dt_sec: float) -> None:
        hot = self.hot_inlet()
        cold = self.cold_inlet()
        if hot.molar_flow <= 1e-9 or cold.molar_flow <= 1e-9:
            self.hot_out = hot.copy()
            self.cold_out = cold.copy()
            self.duty_watts = 0.0
            return
        c_min = min(hot.molar_flow, cold.molar_flow)
        q_max = c_min * (hot.temperature_c - cold.temperature_c)
        q = self.effectiveness * max(0.0, q_max)
        hot_out = hot.copy()
        hot_out.temperature_c = hot.temperature_c - q / hot.molar_flow
        cold_out = cold.copy()
        cold_out.temperature_c = cold.temperature_c + q / cold.molar_flow
        self.hot_out = hot_out
        self.cold_out = cold_out
        self.duty_watts = sensible_duty_watts(
            hot, hot.temperature_c - hot_out.temperature_c)


class Chiller(ProcessUnit):
    """Refrigerated cooler with a duty actuator.

    ``duty_pct`` (0..100) commands the outlet temperature between
    ``t_min_c`` (full duty) and ``t_max_c`` (no duty); the metal/refrigerant
    time constant smooths the response.
    """

    def __init__(self, name: str, inlet: StreamSource,
                 t_min_c: float = -35.0, t_max_c: float = 10.0,
                 initial_duty_pct: float = 60.0,
                 tau_sec: float = 20.0) -> None:
        super().__init__(name)
        if t_min_c >= t_max_c:
            raise ValueError("t_min_c must be below t_max_c")
        self.inlet = inlet
        self.t_min_c = t_min_c
        self.t_max_c = t_max_c
        self.duty_pct = initial_duty_pct
        self.tau_sec = tau_sec
        self.outlet_temperature_c = self._target()
        self.outlet_port = StreamPort()
        self.outlet = Stream.empty()
        self.duty_watts = 0.0

    @property
    def outlet(self) -> Stream:
        return self.outlet_port.get()

    @outlet.setter
    def outlet(self, stream: Stream) -> None:
        self.outlet_port.set_stream(stream)

    def compile_kernel(self, np):
        from repro.plant.kernels import chiller_kernel
        return chiller_kernel(self, np)

    def set_duty(self, duty_pct: float) -> None:
        self.duty_pct = min(100.0, max(0.0, float(duty_pct)))

    def _target(self) -> float:
        span = self.t_max_c - self.t_min_c
        return self.t_max_c - span * self.duty_pct / 100.0

    def step(self, dt_sec: float) -> None:
        alpha = dt_sec / (self.tau_sec + dt_sec)
        self.outlet_temperature_c += alpha * (
            self._target() - self.outlet_temperature_c)
        inlet = self.inlet()
        outlet = inlet.copy()
        outlet.temperature_c = self.outlet_temperature_c
        self.outlet = outlet
        self.duty_watts = abs(sensible_duty_watts(
            inlet, inlet.temperature_c - self.outlet_temperature_c))
