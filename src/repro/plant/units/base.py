"""Process-unit interface.

Units are wired functionally: each consumes upstream streams via callables
(bound at flowsheet construction) and exposes its outputs as attributes.
The flowsheet steps units in topological order; recycle loops (the gas/gas
exchanger's cold return) read the *previous* step's value, the standard
one-step-lag tearing for dynamic simulation.
"""

from __future__ import annotations

from typing import Callable

from repro.plant.components import Stream

StreamSource = Callable[[], Stream]


class ProcessUnit:
    """Base class: a named unit advanced by ``step(dt_sec)``."""

    def __init__(self, name: str) -> None:
        self.name = name

    def step(self, dt_sec: float) -> None:
        """Advance the unit's state by ``dt_sec`` seconds of plant time."""
        raise NotImplementedError

    def compile_kernel(self, np):
        """Optional fused step for the flowsheet's kernel backends.

        Returns a ``kernel(dt_sec)`` closure bit-identical to
        :meth:`step` -- ``np`` is the numpy module for the "np" backend
        and ``None`` for the pure-python one -- or ``None`` to keep
        stepping this unit through :meth:`step`.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"
