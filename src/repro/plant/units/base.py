"""Process-unit interface.

Units are wired functionally: each consumes upstream streams via callables
(bound at flowsheet construction) and exposes its outputs as attributes.
The flowsheet steps units in topological order; recycle loops (the gas/gas
exchanger's cold return) read the *previous* step's value, the standard
one-step-lag tearing for dynamic simulation.
"""

from __future__ import annotations

from typing import Callable

from repro.plant.components import Stream

StreamSource = Callable[[], Stream]


class ProcessUnit:
    """Base class: a named unit advanced by ``step(dt_sec)``."""

    def __init__(self, name: str) -> None:
        self.name = name

    def step(self, dt_sec: float) -> None:
        """Advance the unit's state by ``dt_sec`` seconds of plant time."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"
