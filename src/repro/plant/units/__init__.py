"""Process units for the gas-plant flowsheet."""

from repro.plant.units.base import ProcessUnit
from repro.plant.units.column import Depropanizer
from repro.plant.units.heat_exchanger import Chiller, GasGasExchanger
from repro.plant.units.mixer import Mixer
from repro.plant.units.separator import TwoPhaseSeparator
from repro.plant.units.valve import ControlValve

__all__ = [
    "ProcessUnit",
    "Mixer",
    "ControlValve",
    "TwoPhaseSeparator",
    "GasGasExchanger",
    "Chiller",
    "Depropanizer",
]
