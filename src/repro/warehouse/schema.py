"""Row shapes and keys of the results warehouse.

The warehouse is a small set of append-only logical tables, each a
stream of JSON-object rows addressed by a **content key**:

- ``runs``       -- one row per campaign run record (the exact record a
  :class:`~repro.scenarios.store.ResultsStore` committed), flattened
  with the dimensions queries filter and group on;
- ``summaries``  -- one row per committed ``campaign.json`` summary;
- ``telemetry``  -- one row per ``metrics.jsonl`` line (the per-run
  ``repro.obs`` delta side channel);
- ``bench``      -- one row per ``BENCH_<n>.json`` perf snapshot.

Every row is keyed by its dimensions *plus a digest of its content*, so
re-ingesting the same store (or snapshot) is a no-op: the backend's
unique-key insert turns byte-identical rows into counted duplicates
instead of copies.  Ingesting genuinely new content for the same run id
appends a new row -- the warehouse is append-only; ``vacuum`` drops
superseded duplicates.

The dimension columns every run row carries (the issue's key tuple):
``campaign``, ``scenario``, ``seed``, ``grid_size``, ``tenant``,
``commit``.  ``grid_size`` is derived from the run's HIL config --
``n_nodes`` when the config records one (wide-grid experiments),
otherwise ``slots_per_frame`` (the TDMA frame width, which scales with
the deployment size in the stock rigs).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

TABLE_RUNS = "runs"
TABLE_SUMMARIES = "summaries"
TABLE_TELEMETRY = "telemetry"
TABLE_BENCH = "bench"

TABLES = (TABLE_RUNS, TABLE_SUMMARIES, TABLE_TELEMETRY, TABLE_BENCH)

#: The run-row dimensions queries may filter and group on.
RUN_DIMENSIONS = ("campaign", "tenant", "scenario", "seed", "grid_size",
                  "commit", "ok")


def digest(obj: Any) -> str:
    """A stable content digest: sha256 over canonical (sorted, compact)
    JSON, truncated to 20 hex chars -- collision-safe at warehouse scale
    and short enough to embed in row keys."""
    blob = json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:20]


def grid_size_of(scenario: dict[str, Any]) -> int | None:
    """The grid-size dimension of a run's scenario dict (see module
    docs); ``None`` when the record carries no HIL config at all."""
    hil = scenario.get("hil") or {}
    for field in ("n_nodes", "slots_per_frame"):
        value = hil.get(field)
        if value is not None:
            return int(value)
    return None


def run_row(record: dict[str, Any], *, campaign: str, tenant: str,
            commit: str) -> tuple[str, dict[str, Any]]:
    """``(key, row)`` for one committed run record.

    The full record rides along under ``"record"`` (any stored run stays
    reproducible from the warehouse alone); the dimensions are lifted to
    the top level so backends and queries never re-parse it.  Failed-run
    records (the distributed runner's bounded-retry commits, ``error``
    instead of ``metrics``) ingest with ``ok=False``.
    """
    scenario = record.get("scenario") or {}
    run_id = str(record.get("run_id", ""))
    row = {
        "campaign": campaign,
        "tenant": tenant,
        "run_id": run_id,
        "scenario": str(scenario.get("name", "")),
        "seed": int(scenario.get("seed", 0)),
        "grid_size": grid_size_of(scenario),
        "commit": commit,
        "ok": "error" not in record,
        "record": record,
    }
    key = f"{tenant}|{campaign}|{run_id}|{digest(record)}"
    return key, row


def summary_row(summary: dict[str, Any], *, campaign: str, tenant: str,
                commit: str) -> tuple[str, dict[str, Any]]:
    row = {"campaign": campaign, "tenant": tenant, "commit": commit,
           "summary": summary}
    return f"{tenant}|{campaign}|{digest(summary)}", row


def telemetry_row(obs_row: dict[str, Any], *, campaign: str, tenant: str,
                  commit: str) -> tuple[str, dict[str, Any]]:
    """One ``metrics.jsonl`` line: ``{"run_id": ..., "metrics": {...}}``."""
    run_id = str(obs_row.get("run_id", ""))
    row = {"campaign": campaign, "tenant": tenant, "run_id": run_id,
           "commit": commit, "metrics": obs_row.get("metrics", {})}
    return f"{tenant}|{campaign}|{run_id}|{digest(obs_row)}", row


def bench_row(number: int,
              snapshot: dict[str, Any]) -> tuple[str, dict[str, Any]]:
    """One ``BENCH_<n>.json`` snapshot, whole -- the trend query wants
    the ``optimized`` and ``obs_overhead`` tables exactly as recorded."""
    row = {"bench": int(number), "snapshot": snapshot}
    return f"bench|{int(number):06d}|{digest(snapshot)}", row
