"""Ingestion: committed campaign stores and BENCH perf snapshots.

:func:`ingest_store` walks a committed
:class:`~repro.scenarios.store.ResultsStore` -- run records, the
``campaign.json`` summary and the ``metrics.jsonl`` telemetry side
channel -- and appends everything to the warehouse under the
``(campaign, tenant, commit)`` coordinates.  Content-digest keys make
re-ingest idempotent: a second pass over the same store inserts
nothing and reports the rows as duplicates, and two processes
ingesting different stores into one warehouse serialize on the writer
lock without losing rows.

:func:`ingest_bench` loads ``BENCH_<n>.json`` snapshot files (the
cross-PR perf trajectory) so the bench-trend gate becomes a warehouse
query.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.scenarios.store import ResultsStore
from repro.warehouse import schema
from repro.warehouse.core import Warehouse, open_warehouse

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


@dataclass
class IngestReport:
    """What one ingest pass did (per campaign store or bench batch)."""

    source: str
    campaign: str = ""
    tenant: str = ""
    runs: int = 0
    summaries: int = 0
    telemetry: int = 0
    bench: int = 0
    duplicates: int = 0
    #: metrics.jsonl lines skipped as malformed (torn trailing write).
    telemetry_skipped: int = 0
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def inserted(self) -> int:
        return self.runs + self.summaries + self.telemetry + self.bench

    def describe(self) -> str:
        parts = [f"{self.source}:"]
        if self.runs or self.campaign:
            parts.append(f"{self.runs} run(s)")
        if self.summaries:
            parts.append(f"{self.summaries} summary")
        if self.telemetry:
            parts.append(f"{self.telemetry} telemetry row(s)")
        if self.bench:
            parts.append(f"{self.bench} bench snapshot(s)")
        if self.duplicates:
            parts.append(f"{self.duplicates} duplicate(s) skipped")
        if self.telemetry_skipped:
            parts.append(f"{self.telemetry_skipped} malformed "
                         f"telemetry line(s) skipped")
        return " ".join(parts)


def ingest_store(target: "str | Path | Warehouse", store_root: str | Path,
                 campaign: str | None = None, tenant: str = "default",
                 commit: str = "") -> IngestReport:
    """Ingest one committed campaign store into the warehouse.

    ``campaign`` defaults to the store directory's name.  ``target``
    may be a warehouse path (opened -- and closed -- here) or an
    already-open :class:`Warehouse`.
    """
    store_root = Path(store_root)
    store = ResultsStore(store_root)
    campaign = campaign or store_root.name
    wh = open_warehouse(target)
    report = IngestReport(source=str(store_root), campaign=campaign,
                          tenant=tenant)
    try:
        coords = {"campaign": campaign, "tenant": tenant, "commit": commit}
        run_rows = [schema.run_row(record, **coords)
                    for record in store.load_runs()]
        report.runs, dup = wh.append_rows(schema.TABLE_RUNS, run_rows)
        report.duplicates += dup

        if (store_root / "campaign.json").exists():
            row = schema.summary_row(store.load_summary(), **coords)
            report.summaries, dup = wh.append_rows(
                schema.TABLE_SUMMARIES, [row])
            report.duplicates += dup

        obs_rows, report.telemetry_skipped = \
            store.load_metrics_jsonl_counted()
        telemetry_rows = [schema.telemetry_row(obs_row, **coords)
                          for obs_row in obs_rows]
        report.telemetry, dup = wh.append_rows(
            schema.TABLE_TELEMETRY, telemetry_rows)
        report.duplicates += dup
    finally:
        if not isinstance(target, Warehouse):
            wh.close()
    return report


def ingest_bench(target: "str | Path | Warehouse",
                 paths: "list[str | Path]") -> IngestReport:
    """Ingest ``BENCH_<n>.json`` snapshot files (the number comes from
    the filename, matching ``bench_trend.load_snapshots``)."""
    import json

    wh = open_warehouse(target)
    report = IngestReport(source="bench")
    try:
        rows = []
        for path in paths:
            path = Path(path)
            match = _BENCH_RE.match(path.name)
            if not match:
                raise ValueError(
                    f"{path.name}: not a BENCH_<n>.json snapshot")
            rows.append(schema.bench_row(int(match.group(1)),
                                         json.loads(path.read_text())))
        report.bench, report.duplicates = wh.append_rows(
            schema.TABLE_BENCH, rows)
    finally:
        if not isinstance(target, Warehouse):
            wh.close()
    return report


def ingest_snapshots(target: "str | Path | Warehouse",
                     snapshots: list[tuple[int, dict]]) -> IngestReport:
    """Ingest already-loaded ``(number, snapshot)`` pairs (the shape
    ``bench_trend.load_snapshots`` returns); used by the gate's
    in-memory path."""
    wh = open_warehouse(target)
    report = IngestReport(source="bench")
    try:
        rows = [schema.bench_row(number, snapshot)
                for number, snapshot in snapshots]
        report.bench, report.duplicates = wh.append_rows(
            schema.TABLE_BENCH, rows)
    finally:
        if not isinstance(target, Warehouse):
            wh.close()
    return report
