"""``repro.warehouse`` -- the durable half of observability.

PR 6's ``repro.obs`` made campaigns *watchable* live; this package
makes their results *queryable* after the fact, at cross-campaign and
cross-PR scale: an append-only warehouse (stdlib sqlite3 in WAL mode by
default, an append-only JSONL directory as the zero-dependency
fallback) that ingests committed
:class:`~repro.scenarios.store.ResultsStore` campaigns -- run records,
summaries and the per-run ``metrics.jsonl`` telemetry side channel --
plus ``BENCH_*.json`` perf snapshots, keyed by (campaign, scenario,
seed, grid size, tenant, commit).

Content-digest keys make re-ingest idempotent and a shared writer
``flock`` makes concurrent multi-tenant ingest safe; all query logic
runs over key-sorted row streams, so both backends answer every query
identically.  The campaign runners grow an opt-in ``warehouse=``
target that ingests each campaign as it commits, the
``repro.obs`` HTTP exporter can mount a read-only query edge
(``/campaigns``, ``/query``, ``/trend``), and ``python -m
repro.warehouse`` covers ingest / query / summary / trend / vacuum --
the CI perf-regression gate is just the ``trend --gate`` query.
"""

from repro.warehouse.core import Warehouse, detect_backend, open_warehouse
from repro.warehouse.ingest import (
    IngestReport,
    ingest_bench,
    ingest_snapshots,
    ingest_store,
)
from repro.warehouse.query import (
    bench_snapshots,
    campaign_summary,
    campaigns,
    obs_overhead_failures,
    query_runs,
    telemetry_totals,
    trend_failures,
    trend_series,
)

__all__ = [
    "Warehouse",
    "open_warehouse",
    "detect_backend",
    "IngestReport",
    "ingest_store",
    "ingest_bench",
    "ingest_snapshots",
    "campaigns",
    "campaign_summary",
    "query_runs",
    "telemetry_totals",
    "bench_snapshots",
    "trend_failures",
    "trend_series",
    "obs_overhead_failures",
]
