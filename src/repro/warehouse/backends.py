"""Pluggable storage backends for the results warehouse.

Two implementations of one narrow contract (append keyed rows, iterate
a table, vacuum, close):

- :class:`SqliteBackend` -- the default: a single stdlib ``sqlite3``
  database in WAL mode (concurrent readers never block the writer and
  vice versa), one generic ``rows`` table with a ``UNIQUE(tbl, key)``
  constraint so idempotent re-ingest is a constraint check, not
  application logic;
- :class:`JsonlBackend` -- the zero-dependency fallback: one
  append-only ``<table>.jsonl`` file per table under ``tables/``, rows
  written whole under an exclusive lock, torn trailing lines (a reader
  racing an append, or a crash mid-write) skipped on load.

Both serialize multi-process writers through the same
:class:`~repro.scenarios.store.CommitLock`-style ``flock`` on
``<root>/.warehouse.lock`` -- sqlite has its own locking, but the
shared flock gives the two backends identical concurrency semantics
(and keeps the JSONL read-keys/append sequence atomic).  Reads take no
lock.

Row iteration returns ``(seq, key, row)`` sorted by **key**, not by
insertion order: two warehouses fed the same data by concurrently
racing ingesters -- or one sqlite and one JSONL warehouse fed the same
stores -- enumerate identically, which is what makes backend-parity a
testable property.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.scenarios.store import CommitLock

LOCK_FILENAME = ".warehouse.lock"
SQLITE_FILENAME = "warehouse.sqlite"
JSONL_DIRNAME = "tables"


class _NullLock:
    """Lock stand-in for in-memory warehouses (single process by
    construction, nothing on disk to guard)."""

    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


def _writer_lock(root: Path | None, timeout: float):
    if root is None:
        return _NullLock()
    return CommitLock(root / LOCK_FILENAME, timeout=timeout)


class SqliteBackend:
    """Stdlib sqlite3 storage, WAL mode, one generic keyed-row table."""

    name = "sqlite"

    def __init__(self, root: str | Path | None,
                 lock_timeout: float = 30.0) -> None:
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            db_path = str(self.root / SQLITE_FILENAME)
        else:
            db_path = ":memory:"
        self._lock_timeout = lock_timeout
        # check_same_thread=False: the query edge serves from
        # http.server handler threads; every access here is either a
        # single statement or wrapped in the writer flock.
        self._conn = sqlite3.connect(db_path, timeout=lock_timeout,
                                     check_same_thread=False)
        if self.root is not None:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS rows ("
            " seq INTEGER PRIMARY KEY AUTOINCREMENT,"
            " tbl TEXT NOT NULL,"
            " key TEXT NOT NULL,"
            " data TEXT NOT NULL,"
            " UNIQUE(tbl, key))")
        self._conn.commit()

    def append_rows(self, table: str,
                    keyed_rows: list[tuple[str, dict[str, Any]]],
                    ) -> tuple[int, int]:
        """Insert ``(key, row)`` pairs; returns ``(inserted,
        duplicates)``.  A key already present leaves the stored row
        untouched (append-only: first write wins for a given key)."""
        if not keyed_rows:
            return 0, 0
        with _writer_lock(self.root, self._lock_timeout):
            cursor = self._conn.executemany(
                "INSERT OR IGNORE INTO rows (tbl, key, data) "
                "VALUES (?, ?, ?)",
                [(table, key, json.dumps(row, sort_keys=True))
                 for key, row in keyed_rows])
            self._conn.commit()
            inserted = cursor.rowcount if cursor.rowcount >= 0 else 0
        return inserted, len(keyed_rows) - inserted

    def iter_rows(self, table: str) -> Iterator[tuple[int, str, dict]]:
        cursor = self._conn.execute(
            "SELECT seq, key, data FROM rows WHERE tbl = ? ORDER BY key",
            (table,))
        for seq, key, data in cursor:
            yield int(seq), str(key), json.loads(data)

    def counts(self) -> dict[str, int]:
        cursor = self._conn.execute(
            "SELECT tbl, COUNT(*) FROM rows GROUP BY tbl ORDER BY tbl")
        return {str(tbl): int(n) for tbl, n in cursor}

    def delete_keys(self, table: str, keys: list[str]) -> int:
        if not keys:
            return 0
        with _writer_lock(self.root, self._lock_timeout):
            cursor = self._conn.executemany(
                "DELETE FROM rows WHERE tbl = ? AND key = ?",
                [(table, key) for key in keys])
            self._conn.commit()
            return cursor.rowcount if cursor.rowcount >= 0 else 0

    def vacuum(self) -> None:
        with _writer_lock(self.root, self._lock_timeout):
            self._conn.execute("VACUUM")
            self._conn.commit()

    def close(self) -> None:
        self._conn.close()


class JsonlBackend:
    """Append-only ``<table>.jsonl`` files; no dependencies beyond the
    filesystem.  Each line is ``{"seq": n, "key": k, "row": {...}}``;
    appends happen whole under the writer flock with the key set
    re-read first, so concurrent ingesters neither lose nor duplicate
    rows."""

    name = "jsonl"

    def __init__(self, root: str | Path,
                 lock_timeout: float = 30.0) -> None:
        if root is None:
            raise ValueError("the JSONL backend requires a directory "
                             "(no in-memory mode)")
        self.root = Path(root)
        self._tables_dir = self.root / JSONL_DIRNAME
        self._tables_dir.mkdir(parents=True, exist_ok=True)
        self._lock_timeout = lock_timeout

    def _path(self, table: str) -> Path:
        return self._tables_dir / f"{table}.jsonl"

    def _load(self, table: str) -> list[dict[str, Any]]:
        """Every intact line of a table file; torn trailing lines (a
        crash or a racing reader mid-append) are skipped, mirroring the
        store's ``metrics.jsonl`` hardening."""
        path = self._path(table)
        if not path.exists():
            return []
        entries = []
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        return entries

    def append_rows(self, table: str,
                    keyed_rows: list[tuple[str, dict[str, Any]]],
                    ) -> tuple[int, int]:
        if not keyed_rows:
            return 0, 0
        with _writer_lock(self.root, self._lock_timeout):
            existing = self._load(table)
            seen = {entry["key"] for entry in existing}
            next_seq = max((int(entry.get("seq", 0))
                            for entry in existing), default=0) + 1
            fresh = []
            for key, row in keyed_rows:
                if key in seen:
                    continue
                seen.add(key)
                fresh.append({"seq": next_seq, "key": key, "row": row})
                next_seq += 1
            if fresh:
                blob = "".join(json.dumps(entry, sort_keys=True) + "\n"
                               for entry in fresh)
                fd = os.open(self._path(table),
                             os.O_CREAT | os.O_WRONLY | os.O_APPEND,
                             0o644)
                try:
                    os.write(fd, blob.encode("utf-8"))
                finally:
                    os.close(fd)
        return len(fresh), len(keyed_rows) - len(fresh)

    def iter_rows(self, table: str) -> Iterator[tuple[int, str, dict]]:
        entries = sorted(self._load(table), key=lambda e: e["key"])
        for entry in entries:
            yield int(entry.get("seq", 0)), str(entry["key"]), entry["row"]

    def counts(self) -> dict[str, int]:
        out = {}
        for path in sorted(self._tables_dir.glob("*.jsonl")):
            n = len(self._load(path.stem))
            if n:
                out[path.stem] = n
        return out

    def delete_keys(self, table: str, keys: list[str]) -> int:
        drop = set(keys)
        if not drop:
            return 0
        with _writer_lock(self.root, self._lock_timeout):
            entries = self._load(table)
            kept = [e for e in entries if e["key"] not in drop]
            removed = len(entries) - len(kept)
            if removed:
                self._rewrite(table, kept)
        return removed

    def _rewrite(self, table: str, entries: list[dict[str, Any]]) -> None:
        path = self._path(table)
        tmp = path.with_suffix(".jsonl.tmp")
        tmp.write_text("".join(json.dumps(entry, sort_keys=True) + "\n"
                               for entry in entries))
        os.replace(tmp, path)

    def vacuum(self) -> None:
        """Rewrite each table file (drops any torn lines for good)."""
        with _writer_lock(self.root, self._lock_timeout):
            for path in sorted(self._tables_dir.glob("*.jsonl")):
                self._rewrite(path.stem, self._load(path.stem))

    def close(self) -> None:
        pass


BACKENDS: dict[str, Callable[..., Any]] = {
    SqliteBackend.name: SqliteBackend,
    JsonlBackend.name: JsonlBackend,
}
