"""``python -m repro.warehouse`` -- the warehouse CLI.

Subcommands::

    ingest   ingest committed campaign stores and/or BENCH_*.json
             snapshots into a warehouse
    query    cross-campaign filters / group-by / percentile aggregates
    summary  a campaign's canonical summarize() re-aggregated from the
             warehouse (byte-identical to its campaign.json)
    trend    per-meter perf trajectory over the ingested BENCH
             snapshots; --gate applies the CI regression rule
    vacuum   drop superseded duplicate rows and compact the storage

Examples::

    python -m repro.warehouse ingest --db /tmp/wh results/campaign_a \\
        --tenant alice --commit $(git rev-parse --short HEAD)
    python -m repro.warehouse ingest --db /tmp/wh --bench BENCH_*.json
    python -m repro.warehouse query --db /tmp/wh --group-by scenario \\
        --meter failover_latency_sec --percentiles 50,90,99
    python -m repro.warehouse trend --db /tmp/wh --meter events_per_sec
    python -m repro.warehouse trend --db /tmp/wh --gate   # CI exit code
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.warehouse import ingest as ingest_mod
from repro.warehouse import query as query_mod
from repro.warehouse.core import open_warehouse


def _parse_where(args: argparse.Namespace) -> dict:
    where: dict = {}
    if args.campaign:
        where["campaign"] = (args.campaign[0] if len(args.campaign) == 1
                             else args.campaign)
    if args.tenant:
        where["tenant"] = (args.tenant[0] if len(args.tenant) == 1
                           else args.tenant)
    if args.scenario:
        where["scenario"] = (args.scenario[0] if len(args.scenario) == 1
                             else args.scenario)
    if args.seed is not None:
        where["seed"] = args.seed
    if args.grid_size is not None:
        where["grid_size"] = args.grid_size
    if args.commit:
        where["commit"] = args.commit
    return where


def _cmd_ingest(args: argparse.Namespace) -> int:
    with open_warehouse(args.db, backend=args.backend) as wh:
        reports = []
        for store_root in args.stores:
            reports.append(ingest_mod.ingest_store(
                wh, store_root, campaign=args.campaign_name,
                tenant=args.tenant, commit=args.commit))
        if args.bench:
            reports.append(ingest_mod.ingest_bench(wh, args.bench))
        for report in reports:
            print(report.describe())
        if not reports:
            print("nothing to ingest (pass store directories and/or "
                  "--bench snapshots)", file=sys.stderr)
            return 2
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    with open_warehouse(args.db) as wh:
        if args.campaigns:
            result: dict = {"campaigns": query_mod.campaigns(wh)}
        else:
            group_by = [f.strip() for f in args.group_by.split(",")
                        if f.strip()]
            percentiles = [float(q) for q in args.percentiles.split(",")
                           if q.strip()]
            result = query_mod.query_runs(
                wh, where=_parse_where(args), group_by=group_by,
                meter=args.meter, percentiles=percentiles)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    if "campaigns" in result:
        for entry in result["campaigns"]:
            print(f"{entry['tenant']}/{entry['campaign']}: "
                  f"{entry['runs']} run(s), {entry['failed']} failed, "
                  f"{len(entry['scenarios'])} scenario(s), "
                  f"seeds {entry['seeds']}")
        return 0
    for group in result["groups"]:
        by = " ".join(f"{k}={v}" for k, v in group["by"].items()) or "(all)"
        line = f"{by}: runs={group['runs']} failed={group['failed']}"
        stats = group.get("stats")
        if stats:
            extras = " ".join(
                f"{k}={stats[k]:.4g}" for k in sorted(stats) if k != "n")
            line += f" {result['meter']}[n={stats['n']}] {extras}"
        elif result.get("meter"):
            line += f" {result['meter']}: no values"
        print(line)
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    with open_warehouse(args.db) as wh:
        summary = query_mod.campaign_summary(wh, args.campaign,
                                             tenant=args.tenant)
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _cmd_trend(args: argparse.Namespace) -> int:
    with open_warehouse(args.db) as wh:
        snapshots = query_mod.bench_snapshots(wh)
    if not snapshots:
        print("trend: no BENCH snapshots ingested", file=sys.stderr)
        return 1
    names = ", ".join(f"BENCH_{n}" for n, _ in snapshots)
    print(f"trend: {len(snapshots)} snapshot(s): {names}")
    meters = ([args.meter] if args.meter
              else query_mod.trend_meters(snapshots))
    for meter in meters:
        series = query_mod.trend_series(snapshots, meter,
                                        window=args.window)
        unit = " s " if query_mod.is_duration_meter(meter) else "/s"
        points = "  ".join(f"B{n}:{v:,.6g}" for n, v in series)
        print(f"  {meter:<30} {points}{unit}")
    if not args.gate:
        return 0
    failures = query_mod.trend_failures(
        snapshots, tolerance=args.tolerance,
        meters=[args.meter] if args.meter else None)
    if args.meter is None:
        failures += query_mod.obs_overhead_failures(snapshots)
    if failures:
        print("trend: REGRESSION")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"trend: ok (tolerance {args.tolerance * 100.0:.0f}%)")
    return 0


def _cmd_vacuum(args: argparse.Namespace) -> int:
    with open_warehouse(args.db) as wh:
        removed = wh.vacuum()
        counts = wh.counts()
    dropped = sum(removed.values())
    print(f"vacuum: dropped {dropped} superseded row(s)"
          + (f" {removed}" if removed else ""))
    print(f"vacuum: tables now {counts or '(empty)'}")
    return 0


def _add_filter_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--campaign", action="append", default=[],
                        help="filter to campaign(s) (repeatable)")
    parser.add_argument("--tenant", action="append", default=[],
                        help="filter to tenant(s) (repeatable)")
    parser.add_argument("--scenario", action="append", default=[],
                        help="filter to scenario name(s) (repeatable)")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--grid-size", type=int, default=None,
                        dest="grid_size")
    parser.add_argument("--commit", default=None)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.warehouse",
        description="Durable results warehouse: ingest campaign stores "
                    "and perf snapshots, run cross-campaign queries")
    sub = parser.add_subparsers(dest="command", required=True)

    ingest = sub.add_parser("ingest", help="ingest stores / snapshots")
    ingest.add_argument("--db", required=True,
                        help="warehouse directory (created if missing)")
    ingest.add_argument("--backend", choices=("sqlite", "jsonl"),
                        default=None,
                        help="storage flavor for a new warehouse "
                             "(default sqlite; existing warehouses are "
                             "auto-detected)")
    ingest.add_argument("stores", nargs="*",
                        help="committed campaign store directories")
    ingest.add_argument("--campaign-name", default=None,
                        help="campaign name override (default: the "
                             "store directory's name)")
    ingest.add_argument("--tenant", default="default")
    ingest.add_argument("--commit", default="",
                        help="commit id to key the ingested rows with")
    ingest.add_argument("--bench", nargs="*", default=[],
                        metavar="BENCH_N.json",
                        help="perf snapshot files to ingest")
    ingest.set_defaults(fn=_cmd_ingest)

    query = sub.add_parser("query", help="cross-campaign queries")
    query.add_argument("--db", required=True)
    query.add_argument("--campaigns", action="store_true",
                       help="list the campaign catalog instead of "
                            "aggregating runs")
    _add_filter_args(query)
    query.add_argument("--group-by", default="campaign",
                       help="comma-separated run dimensions "
                            "(default: campaign)")
    query.add_argument("--meter", default=None,
                       help="run-metrics field to aggregate "
                            "(e.g. failover_latency_sec)")
    query.add_argument("--percentiles", default="50,90,99",
                       help="comma-separated percentile ranks "
                            "(nearest-rank; default 50,90,99)")
    query.add_argument("--json", action="store_true",
                       help="emit the structured result as JSON")
    query.set_defaults(fn=_cmd_query)

    summary = sub.add_parser(
        "summary", help="a campaign's canonical summarize() from the "
                        "warehouse (byte-identical to campaign.json)")
    summary.add_argument("--db", required=True)
    summary.add_argument("--campaign", required=True)
    summary.add_argument("--tenant", default=None)
    summary.set_defaults(fn=_cmd_summary)

    trend = sub.add_parser(
        "trend", help="perf trajectory over ingested BENCH snapshots")
    trend.add_argument("--db", required=True)
    trend.add_argument("--meter", default=None,
                       help="one meter (default: every recorded meter)")
    trend.add_argument("--window", type=int, default=None,
                       help="show only the trailing N transitions")
    trend.add_argument("--gate", action="store_true",
                       help="apply the CI regression rule (exit 1 on "
                            "a >tolerance regression)")
    trend.add_argument("--tolerance", type=float,
                       default=query_mod.DEFAULT_TOLERANCE)
    trend.set_defaults(fn=_cmd_trend)

    vacuum = sub.add_parser("vacuum", help="drop superseded duplicates "
                                           "and compact")
    vacuum.add_argument("--db", required=True)
    vacuum.set_defaults(fn=_cmd_vacuum)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
