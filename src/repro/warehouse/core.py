"""The :class:`Warehouse` handle and :func:`open_warehouse` factory.

A warehouse is a directory (or ``":memory:"`` for tests and one-shot
gates) holding one backend's storage plus the shared writer lock.  The
backend is chosen at creation time and auto-detected afterwards from
what is on disk, so readers never need to be told which flavor they are
opening::

    wh = open_warehouse("results/warehouse")            # sqlite (default)
    wh = open_warehouse("results/wh2", backend="jsonl") # zero-dep fallback
    wh = open_warehouse("results/warehouse")            # reopens, detected

All query logic lives in :mod:`repro.warehouse.query` as pure functions
over the backend's sorted row streams, which is what guarantees the two
backends answer every query identically.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterator

from repro.warehouse.backends import (
    BACKENDS,
    JSONL_DIRNAME,
    SQLITE_FILENAME,
    JsonlBackend,
    SqliteBackend,
)

DEFAULT_BACKEND = SqliteBackend.name


def detect_backend(root: str | Path) -> str | None:
    """The backend a directory already holds, or ``None`` when empty."""
    root = Path(root)
    if (root / SQLITE_FILENAME).exists():
        return SqliteBackend.name
    if (root / JSONL_DIRNAME).exists():
        return JsonlBackend.name
    return None


class Warehouse:
    """A thin facade over one backend: append keyed rows, stream
    tables, vacuum.  Use :func:`open_warehouse` to construct."""

    def __init__(self, backend: Any, root: Path | None) -> None:
        self.backend = backend
        self.root = root

    @property
    def backend_name(self) -> str:
        return self.backend.name

    def append_rows(self, table: str,
                    keyed_rows: list[tuple[str, dict[str, Any]]],
                    ) -> tuple[int, int]:
        return self.backend.append_rows(table, keyed_rows)

    def rows(self, table: str) -> Iterator[tuple[int, str, dict]]:
        return self.backend.iter_rows(table)

    def counts(self) -> dict[str, int]:
        return self.backend.counts()

    def vacuum(self) -> dict[str, int]:
        """Drop superseded duplicates, then compact the storage.

        Append-only ingest keeps every content version of a row; for
        rows sharing a logical identity (same key prefix up to the
        content digest -- e.g. a re-ingested run that genuinely
        changed), only the most recently inserted version survives a
        vacuum.  Returns ``{table: rows_removed}``.
        """
        removed: dict[str, int] = {}
        for table in sorted(self.counts()):
            latest: dict[str, tuple[int, str]] = {}
            drop: list[str] = []
            for seq, key, _row in self.rows(table):
                identity = key.rsplit("|", 1)[0]
                prior = latest.get(identity)
                if prior is None:
                    latest[identity] = (seq, key)
                elif seq > prior[0]:
                    drop.append(prior[1])
                    latest[identity] = (seq, key)
                else:
                    drop.append(key)
            count = self.backend.delete_keys(table, drop)
            if count:
                removed[table] = count
        self.backend.vacuum()
        return removed

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_warehouse(target: "str | Path | Warehouse",
                   backend: str | None = None,
                   lock_timeout: float = 30.0) -> Warehouse:
    """Open (creating if needed) the warehouse at ``target``.

    ``target`` may be a directory path, ``":memory:"`` (private
    in-process sqlite, used by one-shot gates), or an existing
    :class:`Warehouse` (returned as-is, so APIs can accept either).
    ``backend`` picks the storage flavor for a *new* warehouse
    (``"sqlite"`` default, ``"jsonl"`` fallback); an existing directory
    is auto-detected and ``backend`` must match it if given.
    """
    if isinstance(target, Warehouse):
        return target
    if str(target) == ":memory:":
        if backend not in (None, SqliteBackend.name):
            raise ValueError(f"in-memory warehouses are sqlite-only, "
                             f"got backend={backend!r}")
        return Warehouse(SqliteBackend(None), root=None)
    root = Path(target)
    detected = detect_backend(root) if root.exists() else None
    if detected is not None:
        if backend is not None and backend != detected:
            raise ValueError(
                f"warehouse at {root} is {detected!r}, not {backend!r}")
        backend = detected
    elif backend is None:
        backend = DEFAULT_BACKEND
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise ValueError(f"unknown warehouse backend {backend!r}; "
                         f"expected one of {sorted(BACKENDS)}") from None
    return Warehouse(factory(root, lock_timeout=lock_timeout), root=root)
