"""``python -m repro.warehouse`` entry point (see ``cli.py``)."""

import sys

from repro.warehouse.cli import main

if __name__ == "__main__":
    sys.exit(main())
