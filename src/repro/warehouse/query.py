"""Cross-campaign queries over an ingested warehouse.

Pure functions over the backend's key-sorted row streams -- no SQL in
the query layer, so the sqlite and JSONL backends answer every query
byte-identically by construction.

Three families:

- **campaign queries** -- :func:`campaigns` (the catalog),
  :func:`query_runs` (filter / group-by / aggregate any run-metrics
  meter with nearest-rank percentiles), and :func:`campaign_summary`,
  which reconstructs a campaign's committed records and feeds them to
  :func:`repro.scenarios.runner.summarize` so the warehouse answer is
  byte-identical to the store's own ``campaign.json``;
- **telemetry queries** -- :func:`telemetry_totals`, summing the
  per-run ``repro.obs`` deltas a campaign's ``metrics.jsonl`` carried;
- **the perf trend** -- :func:`bench_snapshots` /
  :func:`trend_failures` / :func:`obs_overhead_failures`, the exact
  rules ``benchmarks/bench_trend.py`` gates CI with (that script is now
  a thin client of these), plus :func:`trend_series` for the CLI's
  per-meter trajectory listing.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence

from repro.warehouse import schema
from repro.warehouse.core import Warehouse

DEFAULT_TOLERANCE = 0.20
OBS_OVERHEAD_BUDGET_PCT = 10.0


def is_duration_meter(name: str) -> bool:
    """``*_sec`` meters improve downward, ``*_per_sec`` rates upward
    (mirrors ``benchmarks/meters.py``, the naming convention's home)."""
    return name.endswith("_sec") and not name.endswith("_per_sec")


# ----------------------------------------------------------------------
# Campaign queries
# ----------------------------------------------------------------------
def _match(row: dict[str, Any], where: dict[str, Any]) -> bool:
    for field, wanted in where.items():
        value = row.get(field)
        if isinstance(wanted, (list, tuple, set)):
            if value not in wanted:
                return False
        elif value != wanted:
            return False
    return True


def run_rows(wh: Warehouse,
             where: dict[str, Any] | None = None) -> list[dict[str, Any]]:
    """Run rows matching ``where`` (fields from
    :data:`repro.warehouse.schema.RUN_DIMENSIONS`; scalar = equality,
    list = membership), in key order."""
    where = where or {}
    unknown = set(where) - set(schema.RUN_DIMENSIONS)
    if unknown:
        raise ValueError(f"unknown filter field(s) {sorted(unknown)}; "
                         f"expected {schema.RUN_DIMENSIONS}")
    return [row for _seq, _key, row in wh.rows(schema.TABLE_RUNS)
            if _match(row, where)]


def campaigns(wh: Warehouse) -> list[dict[str, Any]]:
    """The catalog: one entry per (tenant, campaign) with run counts
    and the scenario/seed spread."""
    by_campaign: dict[tuple[str, str], dict[str, Any]] = {}
    for _seq, _key, row in wh.rows(schema.TABLE_RUNS):
        entry = by_campaign.setdefault(
            (row["tenant"], row["campaign"]),
            {"tenant": row["tenant"], "campaign": row["campaign"],
             "runs": 0, "failed": 0, "scenarios": set(), "seeds": set(),
             "grid_sizes": set(), "commits": set()})
        entry["runs"] += 1
        if not row["ok"]:
            entry["failed"] += 1
        entry["scenarios"].add(row["scenario"])
        entry["seeds"].add(row["seed"])
        if row["grid_size"] is not None:
            entry["grid_sizes"].add(row["grid_size"])
        if row["commit"]:
            entry["commits"].add(row["commit"])
    for _seq, _key, row in wh.rows(schema.TABLE_SUMMARIES):
        entry = by_campaign.get((row["tenant"], row["campaign"]))
        if entry is not None:
            entry["has_summary"] = True
    out = []
    for key in sorted(by_campaign):
        entry = by_campaign[key]
        for field in ("scenarios", "seeds", "grid_sizes", "commits"):
            entry[field] = sorted(entry[field])
        entry.setdefault("has_summary", False)
        out.append(entry)
    return out


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an ascending-sorted sequence."""
    if not ordered:
        raise ValueError("percentile of an empty series")
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _meter_stats(values: list[float],
                 percentiles: Iterable[float]) -> dict[str, float] | None:
    if not values:
        return None
    ordered = sorted(values)
    n = len(ordered)
    mean = sum(ordered) / n
    stats: dict[str, float] = {
        "n": n, "mean": mean, "min": ordered[0], "max": ordered[-1],
        "std": math.sqrt(sum((v - mean) ** 2 for v in ordered) / n),
    }
    for q in percentiles:
        label = f"p{q:g}"
        stats[label] = _percentile(ordered, float(q))
    return stats


def query_runs(wh: Warehouse, where: dict[str, Any] | None = None,
               group_by: Sequence[str] = ("campaign",),
               meter: str | None = None,
               percentiles: Sequence[float] = (50.0, 90.0, 99.0),
               ) -> dict[str, Any]:
    """Filter, group, aggregate.

    ``meter`` names any numeric field of the run records' ``metrics``
    dict (``failover_latency_sec``, ``control_cost``, ...); runs where
    the meter is null are excluded from the stats but still counted in
    ``runs``.  Percentiles are nearest-rank.  Groups come back sorted
    by their group-key values, so the output is deterministic and
    backend-independent.
    """
    for field in group_by:
        if field not in schema.RUN_DIMENSIONS:
            raise ValueError(f"cannot group by {field!r}; expected one "
                             f"of {schema.RUN_DIMENSIONS}")
    groups: dict[tuple, dict[str, Any]] = {}
    for row in run_rows(wh, where):
        group_key = tuple(row.get(field) for field in group_by)
        entry = groups.setdefault(group_key, {
            "by": dict(zip(group_by, group_key)),
            "runs": 0, "failed": 0, "values": []})
        entry["runs"] += 1
        if not row["ok"]:
            entry["failed"] += 1
        elif meter is not None:
            value = (row["record"].get("metrics") or {}).get(meter)
            if value is not None:
                entry["values"].append(float(value))
    ordered = sorted(groups.items(),
                     key=lambda item: tuple(str(v) for v in item[0]))
    out_groups = []
    for _group_key, entry in ordered:
        values = entry.pop("values")
        if meter is not None:
            entry["stats"] = _meter_stats(values, percentiles)
        out_groups.append(entry)
    return {"meter": meter, "group_by": list(group_by),
            "groups": out_groups}


def campaign_records(wh: Warehouse, campaign: str,
                     tenant: str | None = None) -> list[dict[str, Any]]:
    """A campaign's committed records, in run-id order -- the order
    ``ResultsStore.load_runs`` yields them."""
    where: dict[str, Any] = {"campaign": campaign}
    if tenant is not None:
        where["tenant"] = tenant
    rows = run_rows(wh, where)
    return [row["record"]
            for row in sorted(rows, key=lambda r: r["run_id"])]


def campaign_summary(wh: Warehouse, campaign: str,
                     tenant: str | None = None) -> dict[str, Any]:
    """Re-aggregate a campaign from its ingested records with the
    canonical :func:`repro.scenarios.runner.summarize` -- byte-identical
    to the summary the store itself committed."""
    from repro.scenarios.runner import summarize

    return summarize(campaign_records(wh, campaign, tenant))


def telemetry_totals(wh: Warehouse,
                     where: dict[str, Any] | None = None,
                     ) -> dict[str, float]:
    """Sum the per-run ``repro.obs`` deltas across the matching
    telemetry rows (filters: campaign / tenant / run_id / commit)."""
    where = where or {}
    totals: dict[str, float] = {}
    for _seq, _key, row in wh.rows(schema.TABLE_TELEMETRY):
        if not _match(row, where):
            continue
        for name, value in row.get("metrics", {}).items():
            if isinstance(value, (int, float)):
                totals[name] = totals.get(name, 0) + value
    return dict(sorted(totals.items()))


# ----------------------------------------------------------------------
# Perf trend (the bench_trend gate, as a query)
# ----------------------------------------------------------------------
def bench_snapshots(wh: Warehouse) -> list[tuple[int, dict]]:
    """``(number, snapshot)`` pairs in number order.  If a number was
    re-ingested with changed content (pre-vacuum), the most recently
    inserted version wins."""
    latest: dict[int, tuple[int, dict]] = {}
    for seq, _key, row in wh.rows(schema.TABLE_BENCH):
        number = int(row["bench"])
        prior = latest.get(number)
        if prior is None or seq > prior[0]:
            latest[number] = (seq, row["snapshot"])
    return [(number, latest[number][1]) for number in sorted(latest)]


def trend_failures(snapshots: list[tuple[int, dict]],
                   tolerance: float = DEFAULT_TOLERANCE,
                   meters: Sequence[str] | None = None) -> list[str]:
    """Regression messages (empty = the trend holds).

    The gate rule, verbatim from the original ``bench_trend`` script:
    each snapshot's ``optimized`` meters are compared against the
    latest prior snapshot that recorded the same meter; ``*_per_sec``
    rates regress by dropping below ``prior * (1 - tolerance)``, bare
    ``*_sec`` durations by rising above ``prior * (1 + tolerance)``.
    ``meters`` restricts the check to named meters (default: all).
    """
    failures: list[str] = []
    latest_by_meter: dict[str, tuple[int, float]] = {}
    for number, snapshot in snapshots:
        optimized = snapshot.get("optimized", {})
        for meter, rate in sorted(optimized.items()):
            if meters is not None and meter not in meters:
                continue
            prior = latest_by_meter.get(meter)
            if prior is not None:
                prior_number, prior_rate = prior
                if prior_rate > 0 and is_duration_meter(meter) \
                        and rate > prior_rate * (1.0 + tolerance):
                    failures.append(
                        f"{meter}: BENCH_{number} optimized "
                        f"{rate:,.3f} s is "
                        f"{(rate / prior_rate - 1.0) * 100.0:.0f}% above "
                        f"BENCH_{prior_number} ({prior_rate:,.3f} s); "
                        f"tolerance is {tolerance * 100.0:.0f}%")
                elif prior_rate > 0 and not is_duration_meter(meter) \
                        and rate < prior_rate * (1.0 - tolerance):
                    failures.append(
                        f"{meter}: BENCH_{number} optimized "
                        f"{rate:,.1f}/s is "
                        f"{(1.0 - rate / prior_rate) * 100.0:.0f}% below "
                        f"BENCH_{prior_number} ({prior_rate:,.1f}/s); "
                        f"tolerance is {tolerance * 100.0:.0f}%")
            latest_by_meter[meter] = (number, rate)
    return failures


def obs_overhead_failures(snapshots: list[tuple[int, dict]],
                          budget_pct: float = OBS_OVERHEAD_BUDGET_PCT,
                          ) -> list[str]:
    """Telemetry-budget violations in the latest ``obs_overhead``
    table (the budget constrains current instrumentation, not
    history) -- verbatim from the original gate."""
    carrying = [(n, s) for n, s in snapshots if s.get("obs_overhead")]
    if not carrying:
        return []
    number, snapshot = carrying[-1]
    failures = []
    for meter, row in sorted(snapshot["obs_overhead"].items()):
        overhead = float(row.get("overhead_pct", 0.0))
        if overhead > budget_pct:
            failures.append(
                f"{meter}: BENCH_{number} telemetry-on overhead "
                f"{overhead:.2f}% exceeds the {budget_pct:.0f}% budget "
                f"(off {row.get('off', 0):,.0f}/s, "
                f"on {row.get('on', 0):,.0f}/s)")
    return failures


def trend_series(snapshots: list[tuple[int, dict]], meter: str,
                 window: int | None = None) -> list[tuple[int, float]]:
    """The ``(bench_number, optimized_value)`` trajectory of one meter,
    oldest first; ``window`` keeps only the trailing N transitions
    (N + 1 points)."""
    series = [(number, float(snapshot["optimized"][meter]))
              for number, snapshot in snapshots
              if meter in snapshot.get("optimized", {})]
    if window is not None and window > 0:
        series = series[-(window + 1):]
    return series


def trend_meters(snapshots: list[tuple[int, dict]]) -> list[str]:
    """Every meter any snapshot's ``optimized`` table recorded."""
    names: set[str] = set()
    for _number, snapshot in snapshots:
        names.update(snapshot.get("optimized", {}))
    return sorted(names)
