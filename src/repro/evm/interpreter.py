"""The EVM stack interpreter.

Executes :class:`~repro.evm.bytecode.Program` routines against a task's
migratable memory.  The interpreter itself is stateless between runs: all
mutable state lives in the :class:`VmState`, which control tasks keep inside
their TCBs -- so migrating a TCB genuinely transplants a computation.

Extensibility (the paper's departure from Mate): new *words* can be
registered at runtime and invoked by ``WORD`` instructions, and *host hooks*
bind ``HOST``/``IN``/``OUT`` to kernel, sensor and network operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.evm.bytecode import Opcode, Program

CYCLES_PER_INSTRUCTION = 80
"""Calibration: interpreted instructions cost ~80 AVR cycles each (Mate
reports ~1:33 vs native; we include dispatch overhead)."""


class VmError(RuntimeError):
    """Raised for stack violations, bad jumps, missing hooks, step overrun."""


@dataclass
class VmState:
    """The complete mutable interpreter state (snapshot-able)."""

    stack: list[float] = field(default_factory=list)
    rstack: list[tuple[str, int]] = field(default_factory=list)
    pc: int = 0
    routine: str = ""
    steps: int = 0
    halted: bool = False

    def snapshot(self) -> dict[str, Any]:
        return {
            "stack": list(self.stack),
            "rstack": list(self.rstack),
            "pc": self.pc,
            "routine": self.routine,
            "steps": self.steps,
            "halted": self.halted,
        }

    @classmethod
    def restore(cls, data: dict[str, Any]) -> "VmState":
        state = cls()
        state.stack = list(data["stack"])
        state.rstack = [tuple(frame) for frame in data["rstack"]]
        state.pc = data["pc"]
        state.routine = data["routine"]
        state.steps = data["steps"]
        state.halted = data["halted"]
        return state


class Interpreter:
    """Executes programs; owns the word and host-hook registries."""

    def __init__(self, max_stack: int = 64, max_steps: int = 100_000,
                 memory_slots: int = 64) -> None:
        self.max_stack = max_stack
        self.max_steps = max_steps
        self.memory_slots = memory_slots
        self._words: dict[str, Program] = {}
        self._hosts: dict[str, Callable[["ExecutionContext"], None]] = {}
        self._channels_in: dict[str, Callable[[], float]] = {}
        self._channels_out: dict[str, Callable[[float], None]] = {}
        self.total_steps = 0

    # ------------------------------------------------------------------
    # Runtime extensibility
    # ------------------------------------------------------------------
    def register_word(self, program: Program) -> None:
        """Install a user-defined word (new instruction) at runtime."""
        self._words[program.name] = program

    def has_word(self, name: str) -> bool:
        return name in self._words

    def register_host(self, name: str,
                      fn: Callable[["ExecutionContext"], None]) -> None:
        """Bind a ``HOST`` operation to a kernel/EVM function."""
        self._hosts[name] = fn

    def bind_input(self, channel: str, fn: Callable[[], float]) -> None:
        """Bind an ``IN`` channel (sensor read, received value, ...)."""
        self._channels_in[channel] = fn

    def bind_output(self, channel: str, fn: Callable[[float], None]) -> None:
        """Bind an ``OUT`` channel (actuation, transmit, ...)."""
        self._channels_out[channel] = fn

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, program: Program, memory: list[float],
                state: VmState | None = None,
                max_steps: int | None = None,
                pause_on_budget: bool = False) -> VmState:
        """Run ``program`` to HALT (or step bound) against ``memory``.

        ``memory`` is the task's data segment, mutated in place by
        LOAD/STORE.  Pass a prior non-halted ``state`` to resume a paused
        computation.  With ``pause_on_budget=True`` an exhausted step
        budget *pauses* instead of raising: the returned state has
        ``halted=False`` and can be snapshot, migrated, restored and
        resumed elsewhere -- how mid-computation task migration carries
        "register settings" across nodes.  Returns the final state.
        """
        context = ExecutionContext(self, program, memory)
        if state is None:
            state = VmState(routine=program.name)
        context.state = state
        budget = max_steps if max_steps is not None else self.max_steps
        self._run(context, state.steps + budget, pause_on_budget)
        return state

    def estimated_cycles(self, state: VmState) -> int:
        """MCU cycles the run consumed (for WCET budgeting)."""
        return state.steps * CYCLES_PER_INSTRUCTION

    def _run(self, context: "ExecutionContext", budget: int,
             pause_on_budget: bool = False) -> None:
        state = context.state
        while not state.halted:
            if state.steps >= budget:
                if pause_on_budget:
                    return
                raise VmError(
                    f"step budget {budget} exhausted in {state.routine!r} "
                    f"(pc={state.pc})")
            program = context.current_program()
            if state.pc >= len(program.instructions):
                # Falling off the end returns from a word, halts at top level.
                if state.rstack:
                    state.routine, state.pc = state.rstack.pop()
                    continue
                state.halted = True
                break
            instruction = program.instructions[state.pc]
            state.pc += 1
            state.steps += 1
            self.total_steps += 1
            self._dispatch(context, instruction)

    def _dispatch(self, context: "ExecutionContext", ins) -> None:
        state = context.state
        op = ins.opcode
        push = context.push
        pop = context.pop
        if op is Opcode.HALT:
            state.halted = True
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.PUSH:
            push(float(ins.arg))
        elif op is Opcode.DUP:
            value = pop()
            push(value)
            push(value)
        elif op is Opcode.DROP:
            pop()
        elif op is Opcode.SWAP:
            b, a = pop(), pop()
            push(b)
            push(a)
        elif op is Opcode.OVER:
            b, a = pop(), pop()
            push(a)
            push(b)
            push(a)
        elif op is Opcode.ROT:
            c, b, a = pop(), pop(), pop()
            push(b)
            push(c)
            push(a)
        elif op is Opcode.ADD:
            b, a = pop(), pop()
            push(a + b)
        elif op is Opcode.SUB:
            b, a = pop(), pop()
            push(a - b)
        elif op is Opcode.MUL:
            b, a = pop(), pop()
            push(a * b)
        elif op is Opcode.DIV:
            b, a = pop(), pop()
            if b == 0.0:
                raise VmError(f"division by zero in {state.routine!r}")
            push(a / b)
        elif op is Opcode.NEG:
            push(-pop())
        elif op is Opcode.ABS:
            push(abs(pop()))
        elif op is Opcode.MIN:
            b, a = pop(), pop()
            push(min(a, b))
        elif op is Opcode.MAX:
            b, a = pop(), pop()
            push(max(a, b))
        elif op is Opcode.LT:
            b, a = pop(), pop()
            push(1.0 if a < b else 0.0)
        elif op is Opcode.GT:
            b, a = pop(), pop()
            push(1.0 if a > b else 0.0)
        elif op is Opcode.LE:
            b, a = pop(), pop()
            push(1.0 if a <= b else 0.0)
        elif op is Opcode.GE:
            b, a = pop(), pop()
            push(1.0 if a >= b else 0.0)
        elif op is Opcode.EQ:
            b, a = pop(), pop()
            push(1.0 if a == b else 0.0)
        elif op is Opcode.NE:
            b, a = pop(), pop()
            push(1.0 if a != b else 0.0)
        elif op is Opcode.AND:
            b, a = pop(), pop()
            push(1.0 if (a != 0.0 and b != 0.0) else 0.0)
        elif op is Opcode.OR:
            b, a = pop(), pop()
            push(1.0 if (a != 0.0 or b != 0.0) else 0.0)
        elif op is Opcode.NOT:
            push(1.0 if pop() == 0.0 else 0.0)
        elif op is Opcode.JMP:
            context.jump(ins.arg)
        elif op is Opcode.JZ:
            if pop() == 0.0:
                context.jump(ins.arg)
        elif op is Opcode.CALL:
            state.rstack.append((state.routine, state.pc))
            context.jump(ins.arg)
        elif op is Opcode.RET:
            if not state.rstack:
                state.halted = True
            else:
                state.routine, state.pc = state.rstack.pop()
        elif op is Opcode.LOAD:
            push(context.load(ins.arg))
        elif op is Opcode.STORE:
            context.store(ins.arg, pop())
        elif op is Opcode.IN:
            push(context.read_channel(ins.arg))
        elif op is Opcode.OUT:
            context.write_channel(ins.arg, pop())
        elif op is Opcode.HOST:
            context.call_host(ins.arg)
        elif op is Opcode.WORD:
            context.call_word(ins.arg)
        else:  # pragma: no cover - exhaustive over Opcode
            raise VmError(f"unimplemented opcode {op!r}")


class ExecutionContext:
    """Per-run binding of interpreter, program, task memory and VM state."""

    def __init__(self, interpreter: Interpreter, program: Program,
                 memory: list[float]) -> None:
        self.interpreter = interpreter
        self.root_program = program
        self.memory = memory
        self.state: VmState = VmState(routine=program.name)
        self._programs: dict[str, Program] = {program.name: program}

    def current_program(self) -> Program:
        name = self.state.routine
        if name in self._programs:
            return self._programs[name]
        word = self.interpreter._words.get(name)
        if word is None:
            raise VmError(f"unknown routine {name!r}")
        self._programs[name] = word
        return word

    # ------------------------------------------------------------------
    # Stack
    # ------------------------------------------------------------------
    def push(self, value: float) -> None:
        if len(self.state.stack) >= self.interpreter.max_stack:
            raise VmError(
                f"stack overflow in {self.state.routine!r} "
                f"(depth {self.interpreter.max_stack})")
        self.state.stack.append(float(value))

    def pop(self) -> float:
        if not self.state.stack:
            raise VmError(f"stack underflow in {self.state.routine!r}")
        return self.state.stack.pop()

    # ------------------------------------------------------------------
    # Memory / channels / hosts / words
    # ------------------------------------------------------------------
    def load(self, slot: int) -> float:
        if not 0 <= slot < len(self.memory):
            raise VmError(f"LOAD slot {slot} out of range")
        return self.memory[slot]

    def store(self, slot: int, value: float) -> None:
        if not 0 <= slot < len(self.memory):
            raise VmError(f"STORE slot {slot} out of range")
        self.memory[slot] = value

    def _channel_name(self, index: int) -> str:
        channels = self.current_program().channels or self.root_program.channels
        if not 0 <= index < len(channels):
            raise VmError(f"channel index {index} out of range")
        return channels[index]

    def read_channel(self, index: int) -> float:
        name = self._channel_name(index)
        fn = self.interpreter._channels_in.get(name)
        if fn is None:
            raise VmError(f"no input bound for channel {name!r}")
        return float(fn())

    def write_channel(self, index: int, value: float) -> None:
        name = self._channel_name(index)
        fn = self.interpreter._channels_out.get(name)
        if fn is None:
            raise VmError(f"no output bound for channel {name!r}")
        fn(value)

    def call_host(self, index: int) -> None:
        hosts = self.current_program().host_names or self.root_program.host_names
        if not 0 <= index < len(hosts):
            raise VmError(f"host index {index} out of range")
        name = hosts[index]
        fn = self.interpreter._hosts.get(name)
        if fn is None:
            raise VmError(f"no host hook registered for {name!r}")
        fn(self)

    def call_word(self, index: int) -> None:
        words = self.current_program().word_names or self.root_program.word_names
        if not 0 <= index < len(words):
            raise VmError(f"word index {index} out of range")
        name = words[index]
        if name not in self.interpreter._words:
            raise VmError(f"word {name!r} not installed")
        self.state.rstack.append((self.state.routine, self.state.pc))
        self.state.routine = name
        self.state.pc = 0

    def jump(self, target: int) -> None:
        program = self.current_program()
        if not 0 <= target <= len(program.instructions):
            raise VmError(
                f"jump target {target} out of range in {self.state.routine!r}")
        self.state.pc = target
