"""The EVM stack interpreter.

Executes :class:`~repro.evm.bytecode.Program` routines against a task's
migratable memory.  The interpreter itself is stateless between runs: all
mutable state lives in the :class:`VmState`, which control tasks keep inside
their TCBs -- so migrating a TCB genuinely transplants a computation.

Extensibility (the paper's departure from Mate): new *words* can be
registered at runtime and invoked by ``WORD`` instructions, and *host hooks*
bind ``HOST``/``IN``/``OUT`` to kernel, sensor and network operations.

Dispatch is direct-threaded: each :class:`~repro.evm.bytecode.Program` is
compiled once into a per-instruction list of ``(handler, arg)`` pairs built
from a dispatch table, so the inner loop is "index, call" instead of a
30-way opcode chain.  A **peephole pass** then rewrites slots of that
threaded code with superinstructions -- ``PUSH c``+binop fusion, full
constant folding of ``PUSH;PUSH;binop`` triples, ``DUP;DROP`` elimination,
``STORE s;LOAD s`` write-through, ``LOAD;JZ`` fused branches and jump
threading -- each accounting for the virtual steps it absorbs.  Slots
covered by a pattern keep their original handlers as landing pads, so
jumps into the middle of a fused pair behave exactly like the naive
dispatcher.  Compile-time work (float coercion of PUSH literals,
jump-range validation, channel/host/word name resolution) is hoisted out of
the loop, but every *runtime-visible* behaviour -- error strings, the
program state at the moment an error is raised, step accounting including
budget pauses mid-pattern, the root-table fallback for empty name tables --
is bit-identical to the naive dispatcher; the golden-determinism suite pins
this.  ``Interpreter(peephole=False)`` disables the pass for A/B checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.evm.bytecode import Opcode, Program, fold_constants
from repro.obs import instrument

CYCLES_PER_INSTRUCTION = 80
"""Calibration: interpreted instructions cost ~80 AVR cycles each (Mate
reports ~1:33 vs native; we include dispatch overhead)."""


class VmError(RuntimeError):
    """Raised for stack violations, bad jumps, missing hooks, step overrun."""


@dataclass(slots=True)
class VmState:
    """The complete mutable interpreter state (snapshot-able)."""

    stack: list[float] = field(default_factory=list)
    rstack: list[tuple[str, int]] = field(default_factory=list)
    pc: int = 0
    routine: str = ""
    steps: int = 0
    halted: bool = False

    def snapshot(self) -> dict[str, Any]:
        return {
            "stack": list(self.stack),
            "rstack": list(self.rstack),
            "pc": self.pc,
            "routine": self.routine,
            "steps": self.steps,
            "halted": self.halted,
        }

    @classmethod
    def restore(cls, data: dict[str, Any]) -> "VmState":
        state = cls()
        state.stack = list(data["stack"])
        state.rstack = [tuple(frame) for frame in data["rstack"]]
        state.pc = data["pc"]
        state.routine = data["routine"]
        state.steps = data["steps"]
        state.halted = data["halted"]
        return state


# ----------------------------------------------------------------------
# Threaded-code handlers.
#
# Every handler has the signature ``handler(ctx, state, stack, arg)`` and
# returns a truthy value only when it switched the current routine (RET,
# WORD), telling the run loop to reload its compiled-code pointer.  The
# stack is manipulated inline -- list.append / list.pop on the state's
# stack list -- with the same bound checks and error strings the
# ExecutionContext methods produce.
# ----------------------------------------------------------------------
def _underflow(state) -> VmError:
    return VmError(f"stack underflow in {state.routine!r}")


def _overflow(ctx, state) -> VmError:
    return VmError(f"stack overflow in {state.routine!r} "
                   f"(depth {ctx._max_stack})")


def _h_halt(ctx, state, stack, arg):
    state.halted = True


def _h_nop(ctx, state, stack, arg):
    pass


def _h_push(ctx, state, stack, arg):
    if len(stack) >= ctx._max_stack:
        raise _overflow(ctx, state)
    stack.append(arg)


def _h_dup(ctx, state, stack, arg):
    if not stack:
        raise _underflow(state)
    if len(stack) >= ctx._max_stack:
        raise _overflow(ctx, state)
    stack.append(stack[-1])


def _h_drop(ctx, state, stack, arg):
    if not stack:
        raise _underflow(state)
    stack.pop()


def _h_swap(ctx, state, stack, arg):
    try:
        b = stack.pop()
        a = stack.pop()
    except IndexError:
        raise _underflow(state) from None
    stack.append(b)
    stack.append(a)


def _h_over(ctx, state, stack, arg):
    try:
        b = stack.pop()
        a = stack.pop()
    except IndexError:
        raise _underflow(state) from None
    stack.append(a)
    stack.append(b)
    if len(stack) >= ctx._max_stack:
        raise _overflow(ctx, state)
    stack.append(a)


def _h_rot(ctx, state, stack, arg):
    try:
        c = stack.pop()
        b = stack.pop()
        a = stack.pop()
    except IndexError:
        raise _underflow(state) from None
    stack.append(b)
    stack.append(c)
    stack.append(a)


def _h_add(ctx, state, stack, arg):
    try:
        b = stack.pop()
        a = stack.pop()
    except IndexError:
        raise _underflow(state) from None
    stack.append(a + b)


def _h_sub(ctx, state, stack, arg):
    try:
        b = stack.pop()
        a = stack.pop()
    except IndexError:
        raise _underflow(state) from None
    stack.append(a - b)


def _h_mul(ctx, state, stack, arg):
    try:
        b = stack.pop()
        a = stack.pop()
    except IndexError:
        raise _underflow(state) from None
    stack.append(a * b)


def _h_div(ctx, state, stack, arg):
    try:
        b = stack.pop()
        a = stack.pop()
    except IndexError:
        raise _underflow(state) from None
    if b == 0.0:
        raise VmError(f"division by zero in {state.routine!r}")
    stack.append(a / b)


def _h_neg(ctx, state, stack, arg):
    if not stack:
        raise _underflow(state)
    stack.append(-stack.pop())


def _h_abs(ctx, state, stack, arg):
    if not stack:
        raise _underflow(state)
    stack.append(abs(stack.pop()))


def _h_min(ctx, state, stack, arg):
    try:
        b = stack.pop()
        a = stack.pop()
    except IndexError:
        raise _underflow(state) from None
    # Builtin min/max, not a comparison ternary: NaN propagation and the
    # first-operand-wins tie (-0.0 vs 0.0) must match the seed exactly.
    stack.append(min(a, b))


def _h_max(ctx, state, stack, arg):
    try:
        b = stack.pop()
        a = stack.pop()
    except IndexError:
        raise _underflow(state) from None
    stack.append(max(a, b))


def _h_lt(ctx, state, stack, arg):
    try:
        b = stack.pop()
        a = stack.pop()
    except IndexError:
        raise _underflow(state) from None
    stack.append(1.0 if a < b else 0.0)


def _h_gt(ctx, state, stack, arg):
    try:
        b = stack.pop()
        a = stack.pop()
    except IndexError:
        raise _underflow(state) from None
    stack.append(1.0 if a > b else 0.0)


def _h_le(ctx, state, stack, arg):
    try:
        b = stack.pop()
        a = stack.pop()
    except IndexError:
        raise _underflow(state) from None
    stack.append(1.0 if a <= b else 0.0)


def _h_ge(ctx, state, stack, arg):
    try:
        b = stack.pop()
        a = stack.pop()
    except IndexError:
        raise _underflow(state) from None
    stack.append(1.0 if a >= b else 0.0)


def _h_eq(ctx, state, stack, arg):
    try:
        b = stack.pop()
        a = stack.pop()
    except IndexError:
        raise _underflow(state) from None
    stack.append(1.0 if a == b else 0.0)


def _h_ne(ctx, state, stack, arg):
    try:
        b = stack.pop()
        a = stack.pop()
    except IndexError:
        raise _underflow(state) from None
    stack.append(1.0 if a != b else 0.0)


def _h_and(ctx, state, stack, arg):
    try:
        b = stack.pop()
        a = stack.pop()
    except IndexError:
        raise _underflow(state) from None
    stack.append(1.0 if (a != 0.0 and b != 0.0) else 0.0)


def _h_or(ctx, state, stack, arg):
    try:
        b = stack.pop()
        a = stack.pop()
    except IndexError:
        raise _underflow(state) from None
    stack.append(1.0 if (a != 0.0 or b != 0.0) else 0.0)


def _h_not(ctx, state, stack, arg):
    if not stack:
        raise _underflow(state)
    stack.append(1.0 if stack.pop() == 0.0 else 0.0)


def _h_jmp(ctx, state, stack, arg):
    state.pc = arg


def _h_jmp_bad(ctx, state, stack, arg):
    raise VmError(f"jump target {arg} out of range in {state.routine!r}")


def _h_jz(ctx, state, stack, arg):
    if not stack:
        raise _underflow(state)
    if stack.pop() == 0.0:
        state.pc = arg


def _h_jz_bad(ctx, state, stack, arg):
    # Out-of-range target, validated only when the branch is taken (the
    # naive dispatcher popped first and jumped second).
    if not stack:
        raise _underflow(state)
    if stack.pop() == 0.0:
        raise VmError(f"jump target {arg} out of range in {state.routine!r}")


def _h_call(ctx, state, stack, arg):
    state.rstack.append((state.routine, state.pc))
    state.pc = arg


def _h_call_bad(ctx, state, stack, arg):
    # The return frame is pushed before the jump validates, matching the
    # state observable from the raised error.
    state.rstack.append((state.routine, state.pc))
    raise VmError(f"jump target {arg} out of range in {state.routine!r}")


def _h_ret(ctx, state, stack, arg):
    if not state.rstack:
        state.halted = True
        return None
    state.routine, state.pc = state.rstack.pop()
    return True


def _h_load(ctx, state, stack, arg):
    memory = ctx.memory
    if not 0 <= arg < len(memory):
        raise VmError(f"LOAD slot {arg} out of range")
    if len(stack) >= ctx._max_stack:
        raise _overflow(ctx, state)
    # float() as in ExecutionContext.push: LOAD is the one handler that can
    # otherwise leak a non-float (int-seeded memory) onto the stack.
    stack.append(float(memory[arg]))


def _h_store(ctx, state, stack, arg):
    # The naive dispatcher evaluated ``pop()`` before validating the
    # slot, so the value is consumed even when the slot is bad.
    if not stack:
        raise _underflow(state)
    value = stack.pop()
    memory = ctx.memory
    if not 0 <= arg < len(memory):
        raise VmError(f"STORE slot {arg} out of range")
    memory[arg] = value


def _h_in_named(ctx, state, stack, name):
    fn = ctx.interpreter._channels_in.get(name)
    if fn is None:
        raise VmError(f"no input bound for channel {name!r}")
    value = float(fn())  # the read (and its side effects) precede the push
    if len(stack) >= ctx._max_stack:
        raise _overflow(ctx, state)
    stack.append(value)


def _h_out_named(ctx, state, stack, name):
    # Pop first: OUT consumed its operand before any channel validation.
    if not stack:
        raise _underflow(state)
    value = stack.pop()
    fn = ctx.interpreter._channels_out.get(name)
    if fn is None:
        raise VmError(f"no output bound for channel {name!r}")
    fn(value)


def _h_host_named(ctx, state, stack, name):
    fn = ctx.interpreter._hosts.get(name)
    if fn is None:
        raise VmError(f"no host hook registered for {name!r}")
    fn(ctx)


def _h_word_named(ctx, state, stack, name):
    if name not in ctx.interpreter._words:
        raise VmError(f"word {name!r} not installed")
    state.rstack.append((state.routine, state.pc))
    state.routine = name
    state.pc = 0
    return True


def _h_in_dynamic(ctx, state, stack, arg):
    # Empty channel table at compile time: resolve through the root
    # program's tables at run time, exactly like the naive dispatcher.
    value = ctx.read_channel(arg)
    if len(stack) >= ctx._max_stack:
        raise _overflow(ctx, state)
    stack.append(value)


def _h_out_dynamic(ctx, state, stack, arg):
    if not stack:
        raise _underflow(state)
    ctx.write_channel(arg, stack.pop())


def _h_out_bad(ctx, state, stack, arg):
    # OUT with an out-of-range channel index still pops its operand
    # before the index validation fires.
    if not stack:
        raise _underflow(state)
    stack.pop()
    raise VmError(f"channel index {arg} out of range")


def _h_host_dynamic(ctx, state, stack, arg):
    ctx.call_host(arg)


def _h_word_dynamic(ctx, state, stack, arg):
    ctx.call_word(arg)
    return True


def _h_channel_bad(ctx, state, stack, arg):
    raise VmError(f"channel index {arg} out of range")


def _h_host_bad(ctx, state, stack, arg):
    raise VmError(f"host index {arg} out of range")


def _h_word_bad(ctx, state, stack, arg):
    raise VmError(f"word index {arg} out of range")


_SIMPLE_HANDLERS = {
    Opcode.HALT: _h_halt,
    Opcode.NOP: _h_nop,
    Opcode.DUP: _h_dup,
    Opcode.DROP: _h_drop,
    Opcode.SWAP: _h_swap,
    Opcode.OVER: _h_over,
    Opcode.ROT: _h_rot,
    Opcode.ADD: _h_add,
    Opcode.SUB: _h_sub,
    Opcode.MUL: _h_mul,
    Opcode.DIV: _h_div,
    Opcode.NEG: _h_neg,
    Opcode.ABS: _h_abs,
    Opcode.MIN: _h_min,
    Opcode.MAX: _h_max,
    Opcode.LT: _h_lt,
    Opcode.GT: _h_gt,
    Opcode.LE: _h_le,
    Opcode.GE: _h_ge,
    Opcode.EQ: _h_eq,
    Opcode.NE: _h_ne,
    Opcode.AND: _h_and,
    Opcode.OR: _h_or,
    Opcode.NOT: _h_not,
    Opcode.RET: _h_ret,
    Opcode.LOAD: _h_load,
    Opcode.STORE: _h_store,
}

_NAMED_TABLES = {
    Opcode.IN: ("channels", _h_in_named, _h_in_dynamic, _h_channel_bad),
    Opcode.OUT: ("channels", _h_out_named, _h_out_dynamic, _h_out_bad),
    Opcode.HOST: ("host_names", _h_host_named, _h_host_dynamic, _h_host_bad),
    Opcode.WORD: ("word_names", _h_word_named, _h_word_dynamic, _h_word_bad),
}


# ----------------------------------------------------------------------
# Peephole superinstructions.
#
# The peephole pass rewrites *slots* of the threaded code, never the
# instruction stream: a fused handler at slot ``i`` performs the work of
# instructions ``i..i+k-1`` and returns ``k-1`` extra steps, while slots
# ``i+1..i+k-1`` keep their original single-instruction handlers as
# landing pads for jumps into the middle of a pattern.  Fusions may
# therefore overlap freely -- each slot is an independent view of the
# same virtual instruction stream.
#
# Bit-identical semantics near the edges:
#
# - *Step accounting*: the run loop adds the returned extra cost, so
#   ``state.steps`` counts virtual instructions exactly.  Within
#   ``_FUSED_MAX_COST - 1`` steps of the budget the loop switches to the
#   plain (cost-1) code, so a pause or budget error lands on the exact
#   same instruction boundary as the naive dispatcher.
# - *Errors*: a fault in the middle of a pattern replicates the naive
#   dispatcher's state at the raise -- pc advanced past the completed
#   sub-instructions, their stack effects applied, and the completed
#   count recorded in ``ctx._extra_steps`` (folded into ``state.steps``
#   by the run loop's ``finally``).
# ----------------------------------------------------------------------
_FUSED_MAX_COST = 4  # PUSH/PUSH/binop fold = 3; threaded JMP chain <= 4


def _h_push_add_f(ctx, state, stack, c):
    if len(stack) >= ctx._max_stack:
        raise _overflow(ctx, state)
    try:
        a = stack.pop()
    except IndexError:
        state.pc += 1
        ctx._extra_steps = 1
        raise _underflow(state) from None
    stack.append(a + c)
    state.pc += 1
    return 1


def _h_push_sub_f(ctx, state, stack, c):
    if len(stack) >= ctx._max_stack:
        raise _overflow(ctx, state)
    try:
        a = stack.pop()
    except IndexError:
        state.pc += 1
        ctx._extra_steps = 1
        raise _underflow(state) from None
    stack.append(a - c)
    state.pc += 1
    return 1


def _h_push_mul_f(ctx, state, stack, c):
    if len(stack) >= ctx._max_stack:
        raise _overflow(ctx, state)
    try:
        a = stack.pop()
    except IndexError:
        state.pc += 1
        ctx._extra_steps = 1
        raise _underflow(state) from None
    stack.append(a * c)
    state.pc += 1
    return 1


def _make_push_binop_f(combine):
    """Fused ``PUSH c; <binop>`` handler for the less-hot operators."""

    def handler(ctx, state, stack, c):
        if len(stack) >= ctx._max_stack:
            raise _overflow(ctx, state)
        try:
            a = stack.pop()
        except IndexError:
            state.pc += 1
            ctx._extra_steps = 1
            raise _underflow(state) from None
        stack.append(combine(a, c))
        state.pc += 1
        return 1

    return handler


_PUSH_BINOP_FUSED = {
    Opcode.ADD: _h_push_add_f,
    Opcode.SUB: _h_push_sub_f,
    Opcode.MUL: _h_push_mul_f,
    Opcode.DIV: _make_push_binop_f(lambda a, c: a / c),  # c != 0 at compile
    Opcode.MIN: _make_push_binop_f(min),
    Opcode.MAX: _make_push_binop_f(max),
    Opcode.LT: _make_push_binop_f(lambda a, c: 1.0 if a < c else 0.0),
    Opcode.GT: _make_push_binop_f(lambda a, c: 1.0 if a > c else 0.0),
    Opcode.LE: _make_push_binop_f(lambda a, c: 1.0 if a <= c else 0.0),
    Opcode.GE: _make_push_binop_f(lambda a, c: 1.0 if a >= c else 0.0),
    Opcode.EQ: _make_push_binop_f(lambda a, c: 1.0 if a == c else 0.0),
    Opcode.NE: _make_push_binop_f(lambda a, c: 1.0 if a != c else 0.0),
    Opcode.AND: _make_push_binop_f(
        lambda a, c: 1.0 if (a != 0.0 and c != 0.0) else 0.0),
    Opcode.OR: _make_push_binop_f(
        lambda a, c: 1.0 if (a != 0.0 or c != 0.0) else 0.0),
}


def _h_push2_fold_f(ctx, state, stack, arg):
    # PUSH a; PUSH b; binop, folded to its constant at compile time.
    first, folded = arg
    depth = len(stack)
    if depth >= ctx._max_stack:
        raise _overflow(ctx, state)
    if depth + 1 >= ctx._max_stack:
        # The *second* PUSH is the one that overflows, after the first
        # landed: replicate that exact state.
        stack.append(first)
        state.pc += 1
        ctx._extra_steps = 1
        raise _overflow(ctx, state)
    stack.append(folded)
    state.pc += 2
    return 2


def _h_dup_drop_f(ctx, state, stack, arg):
    # DUP; DROP eliminated -- only the naive pair's bound checks remain.
    if not stack:
        raise _underflow(state)
    if len(stack) >= ctx._max_stack:
        raise _overflow(ctx, state)
    state.pc += 1
    return 1


def _h_store_load_f(ctx, state, stack, slot):
    # STORE s; LOAD s -- write-through without the stack round trip.
    try:
        value = stack.pop()
    except IndexError:
        raise _underflow(state) from None
    memory = ctx.memory
    if not 0 <= slot < len(memory):
        raise VmError(f"STORE slot {slot} out of range")
    memory[slot] = value
    stack.append(float(value))  # LOAD's coercion, bit-for-bit
    state.pc += 1
    return 1


def _h_load_jz_f(ctx, state, stack, arg):
    # LOAD s; JZ t -- the branch consumes the loaded value directly.
    slot, target = arg
    memory = ctx.memory
    if not 0 <= slot < len(memory):
        raise VmError(f"LOAD slot {slot} out of range")
    if len(stack) >= ctx._max_stack:
        raise _overflow(ctx, state)
    if memory[slot] == 0.0:
        state.pc = target
    else:
        state.pc += 1
    return 1


def _h_jmp_thread_f(ctx, state, stack, arg):
    target, extra = arg
    state.pc = target
    return extra


def _h_jz_thread_f(ctx, state, stack, arg):
    if not stack:
        raise _underflow(state)
    if stack.pop() == 0.0:
        target, extra = arg
        state.pc = target
        return extra
    return None


def _thread_jump(instructions, target: int, n: int,
                 cap: int = _FUSED_MAX_COST - 1) -> tuple[int, int]:
    """Follow a chain of in-range JMPs from ``target``; returns the final
    target and the number of collapsed hops (0 = nothing to thread).
    Cycles terminate via the seen-set; ``cap`` bounds the per-dispatch
    step cost so the budget guard stays a small constant."""
    collapsed = 0
    seen = {target}
    while collapsed < cap and target < n:
        ins = instructions[target]
        if ins.opcode is not Opcode.JMP:
            break
        nxt = ins.arg
        if not 0 <= nxt <= n or nxt in seen:
            break
        seen.add(nxt)
        collapsed += 1
        target = nxt
    return target, collapsed


def _optimize_code(program: Program, code: list[tuple]) -> list[tuple]:
    """The peephole pass: fuse adjacent-instruction idioms into
    superinstruction slots of the threaded code.

    Every transform preserves observable semantics instruction-for-
    instruction (checked against the naive dispatcher by the
    golden-determinism property suite); returns ``code`` itself when no
    opportunity exists so the common tiny-program case costs nothing.
    """
    instructions = program.instructions
    n = len(instructions)
    fused = None
    for i, ins in enumerate(instructions):
        op = ins.opcode
        nxt = instructions[i + 1].opcode if i + 1 < n else None
        replacement = None
        if op is Opcode.PUSH:
            if nxt is Opcode.PUSH and i + 2 < n:
                folded = fold_constants(instructions[i + 2].opcode,
                                        float(ins.arg),
                                        float(instructions[i + 1].arg))
                if folded is not None:
                    replacement = (_h_push2_fold_f,
                                   (float(ins.arg), folded))
            if replacement is None:
                handler = _PUSH_BINOP_FUSED.get(nxt)
                if handler is not None:
                    c = float(ins.arg)
                    if not (nxt is Opcode.DIV and c == 0.0):
                        replacement = (handler, c)
        elif op is Opcode.DUP and nxt is Opcode.DROP:
            replacement = (_h_dup_drop_f, None)
        elif (op is Opcode.STORE and nxt is Opcode.LOAD
                and ins.arg == instructions[i + 1].arg):
            replacement = (_h_store_load_f, ins.arg)
        elif op is Opcode.LOAD and nxt is Opcode.JZ:
            target = instructions[i + 1].arg
            if 0 <= target <= n:
                replacement = (_h_load_jz_f, (ins.arg, target))
        elif op in (Opcode.JMP, Opcode.JZ) and 0 <= ins.arg <= n:
            target, collapsed = _thread_jump(instructions, ins.arg, n)
            if collapsed:
                handler = (_h_jmp_thread_f if op is Opcode.JMP
                           else _h_jz_thread_f)
                replacement = (handler, (target, collapsed))
        if replacement is not None:
            if fused is None:
                fused = list(code)
            fused[i] = replacement
    return fused if fused is not None else code


def _compile_program(program: Program) -> list[tuple]:
    """Translate ``program`` into its direct-threaded ``(handler, arg)``
    form.  Pure function of the (immutable) program, so the result is
    cached per program object."""
    n = len(program.instructions)
    code: list[tuple] = []
    for ins in program.instructions:
        op = ins.opcode
        simple = _SIMPLE_HANDLERS.get(op)
        if simple is not None:
            code.append((simple, ins.arg))
        elif op is Opcode.PUSH:
            code.append((_h_push, float(ins.arg)))
        elif op is Opcode.JMP:
            code.append((_h_jmp, ins.arg) if 0 <= ins.arg <= n
                        else (_h_jmp_bad, ins.arg))
        elif op is Opcode.JZ:
            code.append((_h_jz, ins.arg) if 0 <= ins.arg <= n
                        else (_h_jz_bad, ins.arg))
        elif op is Opcode.CALL:
            code.append((_h_call, ins.arg) if 0 <= ins.arg <= n
                        else (_h_call_bad, ins.arg))
        else:
            table_attr, named, dynamic, bad = _NAMED_TABLES[op]
            table = getattr(program, table_attr)
            if not table:
                # Empty table: the naive dispatcher falls back to the
                # *root* program's tables, which are only known per run.
                code.append((dynamic, ins.arg))
            elif 0 <= ins.arg < len(table):
                code.append((named, table[ins.arg]))
            else:
                code.append((bad, ins.arg))
    return code


class Interpreter:
    """Executes programs; owns the word and host-hook registries."""

    def __init__(self, max_stack: int = 64, max_steps: int = 100_000,
                 memory_slots: int = 64, peephole: bool = True) -> None:
        self.max_stack = max_stack
        self.max_steps = max_steps
        self.memory_slots = memory_slots
        self.peephole = peephole
        self._words: dict[str, Program] = {}
        self._hosts: dict[str, Callable[["ExecutionContext"], None]] = {}
        self._channels_in: dict[str, Callable[[], float]] = {}
        self._channels_out: dict[str, Callable[[float], None]] = {}
        # id(program) -> (program, plain threaded code, peephole-fused
        # code).  The program reference pins the id, so keys can never
        # alias a different live program.
        self._compiled: dict[int, tuple[Program, list[tuple], list[tuple]]] = {}
        self.total_steps = 0
        # Metered at execute() granularity only -- the threaded-code
        # dispatch loop must never see a per-instruction hook.
        self._obs = instrument.vm_meters()

    # ------------------------------------------------------------------
    # Runtime extensibility
    # ------------------------------------------------------------------
    def register_word(self, program: Program) -> None:
        """Install a user-defined word (new instruction) at runtime."""
        self._words[program.name] = program

    def has_word(self, name: str) -> bool:
        return name in self._words

    def register_host(self, name: str,
                      fn: Callable[["ExecutionContext"], None]) -> None:
        """Bind a ``HOST`` operation to a kernel/EVM function."""
        self._hosts[name] = fn

    def bind_input(self, channel: str, fn: Callable[[], float]) -> None:
        """Bind an ``IN`` channel (sensor read, received value, ...)."""
        self._channels_in[channel] = fn

    def bind_output(self, channel: str, fn: Callable[[float], None]) -> None:
        """Bind an ``OUT`` channel (actuation, transmit, ...)."""
        self._channels_out[channel] = fn

    # ------------------------------------------------------------------
    # Compilation cache
    # ------------------------------------------------------------------
    def compiled(self, program: Program) -> list[tuple]:
        """The production threaded code for ``program`` (peephole form)."""
        return self.compiled_pair(program)[1]

    def compiled_pair(self, program: Program) -> tuple[list[tuple],
                                                       list[tuple]]:
        """``(plain, fused)`` threaded code, compiled once and cached.

        ``plain`` is the cost-1-per-slot form the run loop falls back to
        near the step budget; ``fused`` is the peephole-optimized form
        (the same list when the pass finds nothing, or is disabled).
        """
        entry = self._compiled.get(id(program))
        if entry is not None and entry[0] is program:
            return entry[1], entry[2]
        if len(self._compiled) > 4096:  # capsule-upgrade churn backstop
            self._compiled.clear()
        plain = _compile_program(program)
        fused = _optimize_code(program, plain) if self.peephole else plain
        self._compiled[id(program)] = (program, plain, fused)
        return plain, fused

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, program: Program, memory: list[float],
                state: VmState | None = None,
                max_steps: int | None = None,
                pause_on_budget: bool = False) -> VmState:
        """Run ``program`` to HALT (or step bound) against ``memory``.

        ``memory`` is the task's data segment, mutated in place by
        LOAD/STORE.  Pass a prior non-halted ``state`` to resume a paused
        computation.  With ``pause_on_budget=True`` an exhausted step
        budget *pauses* instead of raising: the returned state has
        ``halted=False`` and can be snapshot, migrated, restored and
        resumed elsewhere -- how mid-computation task migration carries
        "register settings" across nodes.  Returns the final state.
        """
        context = ExecutionContext(self, program, memory)
        if state is None:
            state = VmState(routine=program.name)
        context.state = state
        budget = max_steps if max_steps is not None else self.max_steps
        if self._obs is None:
            self._run(context, state.steps + budget, pause_on_budget)
            return state
        before = state.steps
        try:
            self._run(context, state.steps + budget, pause_on_budget)
        except VmError:
            self._obs.faults.inc()
            self._obs.instructions.inc(state.steps - before)
            raise
        self._obs.instructions.inc(state.steps - before)
        return state

    def estimated_cycles(self, state: VmState) -> int:
        """MCU cycles the run consumed (for WCET budgeting)."""
        return state.steps * CYCLES_PER_INSTRUCTION

    def _run(self, context: "ExecutionContext", budget: int,
             pause_on_budget: bool = False) -> None:
        state = context.state
        # The stack list object is stable for the whole run: handlers and
        # host hooks mutate it in place (ctx.push/pop), never rebind it.
        stack = state.stack
        # Code loads lazily so a halted or budget-exhausted state never
        # resolves its routine (the naive loop checked those first).
        code: list[tuple] | None = None
        ncode = 0
        steps = state.steps
        start_steps = steps
        # Fused superinstructions advance ``steps`` by up to
        # _FUSED_MAX_COST per dispatch; within that distance of the
        # budget the loop drops to the plain cost-1 code so pauses and
        # budget errors land on the exact naive instruction boundary.
        guard = budget - (_FUSED_MAX_COST - 1)
        try:
            while not state.halted:
                if steps >= guard:
                    if steps >= budget:
                        if pause_on_budget:
                            return
                        raise VmError(
                            f"step budget {budget} exhausted in "
                            f"{state.routine!r} (pc={state.pc})")
                    if not context._precise:
                        context._precise = True
                        if code is not None:
                            code = context._load_code()
                            ncode = len(code)
                    guard = budget
                if code is None:
                    code = context._load_code()
                    ncode = len(code)
                pc = state.pc
                if pc >= ncode:
                    # Falling off the end returns from a word, halts at
                    # top level.
                    if state.rstack:
                        state.routine, state.pc = state.rstack.pop()
                        code = context._load_code()
                        ncode = len(code)
                        continue
                    state.halted = True
                    break
                handler, arg = code[pc]
                state.pc = pc + 1
                steps += 1
                r = handler(context, state, stack, arg)
                if r:
                    if r is True:
                        # Routine switch (RET / WORD): reload its code.
                        code = context._load_code()
                        ncode = len(code)
                    else:
                        steps += r  # extra virtual steps a fusion absorbed
        finally:
            # _extra_steps records sub-instructions a superinstruction
            # completed before faulting; zero on every non-error path.
            state.steps = steps + context._extra_steps
            self.total_steps += steps + context._extra_steps - start_steps


class ExecutionContext:
    """Per-run binding of interpreter, program, task memory and VM state."""

    def __init__(self, interpreter: Interpreter, program: Program,
                 memory: list[float]) -> None:
        self.interpreter = interpreter
        self.root_program = program
        self.memory = memory
        self.state: VmState = VmState(routine=program.name)
        self._programs: dict[str, Program] = {program.name: program}
        self._codes_fast: dict[str, list[tuple]] = {}
        self._codes_plain: dict[str, list[tuple]] = {}
        self._max_stack = interpreter.max_stack
        # True once the run loop is within a superinstruction's reach of
        # its step budget: code loads switch to the plain cost-1 form.
        self._precise = False
        # Sub-instructions completed by a faulting superinstruction.
        self._extra_steps = 0

    def current_program(self) -> Program:
        name = self.state.routine
        if name in self._programs:
            return self._programs[name]
        word = self.interpreter._words.get(name)
        if word is None:
            raise VmError(f"unknown routine {name!r}")
        self._programs[name] = word
        return word

    def _load_code(self) -> list[tuple]:
        """Threaded code for the current routine, cached per run so a
        word re-registered mid-run keeps the version it started with
        (the same pin ``current_program`` provides)."""
        name = self.state.routine
        codes = self._codes_plain if self._precise else self._codes_fast
        code = codes.get(name)
        if code is None:
            plain, fused = self.interpreter.compiled_pair(
                self.current_program())
            self._codes_plain[name] = plain
            self._codes_fast[name] = fused
            code = plain if self._precise else fused
        return code

    # ------------------------------------------------------------------
    # Stack
    # ------------------------------------------------------------------
    def push(self, value: float) -> None:
        if len(self.state.stack) >= self.interpreter.max_stack:
            raise VmError(
                f"stack overflow in {self.state.routine!r} "
                f"(depth {self.interpreter.max_stack})")
        self.state.stack.append(float(value))

    def pop(self) -> float:
        if not self.state.stack:
            raise VmError(f"stack underflow in {self.state.routine!r}")
        return self.state.stack.pop()

    # ------------------------------------------------------------------
    # Memory / channels / hosts / words
    # ------------------------------------------------------------------
    def load(self, slot: int) -> float:
        if not 0 <= slot < len(self.memory):
            raise VmError(f"LOAD slot {slot} out of range")
        return self.memory[slot]

    def store(self, slot: int, value: float) -> None:
        if not 0 <= slot < len(self.memory):
            raise VmError(f"STORE slot {slot} out of range")
        self.memory[slot] = value

    def _channel_name(self, index: int) -> str:
        channels = self.current_program().channels or self.root_program.channels
        if not 0 <= index < len(channels):
            raise VmError(f"channel index {index} out of range")
        return channels[index]

    def read_channel(self, index: int) -> float:
        name = self._channel_name(index)
        fn = self.interpreter._channels_in.get(name)
        if fn is None:
            raise VmError(f"no input bound for channel {name!r}")
        return float(fn())

    def write_channel(self, index: int, value: float) -> None:
        name = self._channel_name(index)
        fn = self.interpreter._channels_out.get(name)
        if fn is None:
            raise VmError(f"no output bound for channel {name!r}")
        fn(value)

    def call_host(self, index: int) -> None:
        hosts = self.current_program().host_names or self.root_program.host_names
        if not 0 <= index < len(hosts):
            raise VmError(f"host index {index} out of range")
        name = hosts[index]
        fn = self.interpreter._hosts.get(name)
        if fn is None:
            raise VmError(f"no host hook registered for {name!r}")
        fn(self)

    def call_word(self, index: int) -> None:
        words = self.current_program().word_names or self.root_program.word_names
        if not 0 <= index < len(words):
            raise VmError(f"word index {index} out of range")
        name = words[index]
        if name not in self.interpreter._words:
            raise VmError(f"word {name!r} not installed")
        self.state.rstack.append((self.state.routine, self.state.pc))
        self.state.routine = name
        self.state.pc = 0

    def jump(self, target: int) -> None:
        program = self.current_program()
        if not 0 <= target <= len(program.instructions):
            raise VmError(
                f"jump target {target} out of range in {self.state.routine!r}")
        self.state.pc = target
