"""Versioned code capsules and their per-node store.

A :class:`Capsule` wraps an encoded EVM program with a version number and an
integrity digest.  Nodes keep a :class:`CapsuleStore`; installing a capsule
verifies the digest, enforces monotone versions, charges ROM budget, and
makes the program available to the local interpreter (registering words).

Dissemination is viral, Mate-style: the runtime rebroadcasts any capsule
that was news to it, so new control laws proliferate through a Virtual
Component without per-node flashing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from repro.evm.bytecode import Program


@dataclass(frozen=True)
class Capsule:
    """One disseminable unit of code."""

    name: str
    version: int
    blob: bytes
    digest: bytes = b""

    @classmethod
    def from_program(cls, program: Program, version: int) -> "Capsule":
        blob = program.encode()
        return cls(name=program.name, version=version, blob=blob,
                   digest=_capsule_digest(blob))

    def program(self) -> Program:
        return Program.decode(self.blob)

    def verify(self) -> bool:
        return _capsule_digest(self.blob) == self.digest

    @property
    def size_bytes(self) -> int:
        return len(self.blob) + len(self.digest) + 8

    def corrupted_copy(self, byte_index: int) -> "Capsule":
        """A copy with one flipped byte (fault-injection helper)."""
        mutated = bytearray(self.blob)
        mutated[byte_index % len(mutated)] ^= 0xFF
        return Capsule(name=self.name, version=self.version,
                       blob=bytes(mutated), digest=self.digest)


def _capsule_digest(blob: bytes) -> bytes:
    return hashlib.sha256(blob).digest()[:8]


class CapsuleInstallError(RuntimeError):
    """Raised when a capsule fails verification or does not fit ROM."""


class CapsuleStore:
    """Per-node capsule registry with version control and ROM accounting."""

    def __init__(self, rom_bank=None,
                 on_install: Callable[[Capsule], None] | None = None) -> None:
        self.rom_bank = rom_bank
        self.on_install = on_install
        self._capsules: dict[str, Capsule] = {}
        self.rejected_corrupt = 0
        self.rejected_stale = 0

    def version_of(self, name: str) -> int:
        capsule = self._capsules.get(name)
        return capsule.version if capsule is not None else -1

    def has(self, name: str, version: int | None = None) -> bool:
        capsule = self._capsules.get(name)
        if capsule is None:
            return False
        return version is None or capsule.version >= version

    def install(self, capsule: Capsule) -> bool:
        """Install if newer and intact.  Returns True if it was news.

        Raises :class:`CapsuleInstallError` on corruption (the sender should
        retransmit); silently refuses stale versions (returns False).
        """
        if not capsule.verify():
            self.rejected_corrupt += 1
            raise CapsuleInstallError(
                f"capsule {capsule.name!r} v{capsule.version} failed "
                f"integrity verification")
        if capsule.version <= self.version_of(capsule.name):
            self.rejected_stale += 1
            return False
        if self.rom_bank is not None:
            region = f"capsule:{capsule.name}"
            existing = self._capsules.get(capsule.name)
            if existing is not None:
                self.rom_bank.resize(region, capsule.size_bytes)
            else:
                self.rom_bank.allocate(region, capsule.size_bytes)
        self._capsules[capsule.name] = capsule
        if self.on_install is not None:
            self.on_install(capsule)
        return True

    def get(self, name: str) -> Capsule:
        if name not in self._capsules:
            raise KeyError(f"no capsule {name!r} installed")
        return self._capsules[name]

    def names(self) -> list[str]:
        return sorted(self._capsules)

    def summary(self) -> dict[str, int]:
        """name -> version map (gossiped in membership beacons)."""
        return {name: c.version for name, c in self._capsules.items()}
