"""The Embedded Virtual Machine -- the paper's contribution.

An EVM is a *distributed* runtime: one instance runs on every node as a
privileged nano-RK task, and together the instances maintain Virtual
Components -- logical sensor/controller/actuator groups whose control law,
timeliness and fault-tolerance invariants survive changes in the physical
network.

Package layout:

- :mod:`~repro.evm.bytecode` / :mod:`~repro.evm.interpreter` -- the
  FORTH-like, runtime-extensible instruction set and its stack interpreter;
- :mod:`~repro.evm.capsule` -- versioned code capsules and dissemination;
- :mod:`~repro.evm.attestation` -- software attestation of received code;
- :mod:`~repro.evm.tasks` -- logical tasks (node-independent control work);
- :mod:`~repro.evm.virtual_component` -- VC membership and task tables;
- :mod:`~repro.evm.object_transfer` -- the five transfer relationships;
- :mod:`~repro.evm.health` -- output-plausibility fault detection;
- :mod:`~repro.evm.failover` -- controller modes and head arbitration;
- :mod:`~repro.evm.migration` -- the task migration protocol;
- :mod:`~repro.evm.optimizer` -- BQP task-assignment optimization;
- :mod:`~repro.evm.runtime` -- the per-node super-task tying it together.
"""

from repro.evm.attestation import attest_digest, verify_attestation
from repro.evm.bytecode import Assembler, Instruction, Opcode, Program
from repro.evm.capsule import Capsule, CapsuleStore
from repro.evm.failover import ControllerMode
from repro.evm.interpreter import Interpreter, VmError, VmState
from repro.evm.optimizer import (
    AssignmentProblem,
    bqp_assign,
    greedy_assign,
)
from repro.evm.runtime import EvmRuntime
from repro.evm.tasks import LogicalTask
from repro.evm.virtual_component import VirtualComponent

__all__ = [
    "Opcode",
    "Instruction",
    "Program",
    "Assembler",
    "Interpreter",
    "VmState",
    "VmError",
    "Capsule",
    "CapsuleStore",
    "attest_digest",
    "verify_attestation",
    "LogicalTask",
    "VirtualComponent",
    "ControllerMode",
    "AssignmentProblem",
    "bqp_assign",
    "greedy_assign",
    "EvmRuntime",
]
