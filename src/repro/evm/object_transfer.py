"""Object transfer relationships within a Virtual Component.

The paper defines five elementary transfer types governing how control, data
and fault information move between the interconnected controllers of a VC:

- **disjoint** -- no shared state; components may run concurrently;
- **directional / bi-directional** -- master-slave, publish-subscribe,
  producer-consumer data flow (the basic type for active controllers);
- **temporal-conditional** -- the transfer is valid only under a timing
  condition (freshness window, phase relationship);
- **causal-conditional** -- the transfer is gated on a state predicate
  (only after event X, only while mode M);
- **health assessment** -- monitoring relationships: who observes whom,
  who is primary/backup, and how to respond to faults.

These are declarative objects; :mod:`repro.evm.runtime` interprets them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TransferKind(enum.Enum):
    DISJOINT = "disjoint"
    DIRECTIONAL = "directional"
    BIDIRECTIONAL = "bidirectional"
    TEMPORAL = "temporal-conditional"
    CAUSAL = "causal-conditional"
    HEALTH = "health-assessment"


class FaultResponse(enum.Enum):
    """What a health-assessment monitor does on confirmed fault."""

    TRIGGER_ALERT = "alert"          # notify the VC head only
    TRIGGER_BACKUP = "backup"        # request promotion of a backup
    HALT = "halt"                    # command the faulty node to halt
    LOCAL_FAILSAFE = "failsafe"      # actuator falls back to a safe value


@dataclass(frozen=True)
class DisjointRelation:
    """Explicit declaration that two tasks share nothing."""

    task_a: str
    task_b: str
    kind: TransferKind = field(default=TransferKind.DISJOINT, init=False)


@dataclass(frozen=True)
class DirectionalTransfer:
    """Producer task publishes ``keys`` of its data segment to a consumer.

    The runtime ships the named memory slots after each producer job.
    ``slots`` maps producer memory slot -> consumer memory slot.
    """

    producer: str
    consumer: str
    slots: tuple[tuple[int, int], ...]
    kind: TransferKind = field(default=TransferKind.DIRECTIONAL, init=False)


@dataclass(frozen=True)
class BidirectionalTransfer:
    """Symmetric exchange: each side publishes slots to the other."""

    task_a: str
    task_b: str
    slots_a_to_b: tuple[tuple[int, int], ...]
    slots_b_to_a: tuple[tuple[int, int], ...]
    kind: TransferKind = field(default=TransferKind.BIDIRECTIONAL, init=False)


@dataclass(frozen=True)
class TemporalConditionalTransfer:
    """Directional transfer valid only within a freshness window.

    A sample older than ``max_age_ticks`` on arrival is discarded -- stale
    sensor data must not drive actuation.
    """

    producer: str
    consumer: str
    slots: tuple[tuple[int, int], ...]
    max_age_ticks: int
    kind: TransferKind = field(default=TransferKind.TEMPORAL, init=False)


@dataclass(frozen=True)
class CausalConditionalTransfer:
    """Directional transfer gated on a predicate over the producer's data.

    ``guard_slot``/``guard_threshold``: ship only while
    ``data[guard_slot] >= guard_threshold`` (e.g. "only in mode 2", with the
    mode number kept in a memory slot).
    """

    producer: str
    consumer: str
    slots: tuple[tuple[int, int], ...]
    guard_slot: int
    guard_threshold: float
    kind: TransferKind = field(default=TransferKind.CAUSAL, init=False)


@dataclass(frozen=True)
class HealthAssessment:
    """Monitoring relationship: ``monitor`` watches ``subject``'s task.

    ``plausible_min``/``plausible_max``/``max_rate_per_sec`` parameterize the
    output plausibility check; ``threshold`` is the consecutive-anomaly count
    that confirms a fault; ``response`` is the action taken.
    """

    monitor: str           # node id doing the watching
    subject: str           # node id being watched
    task: str              # logical task under observation
    response: FaultResponse
    plausible_min: float = float("-inf")
    plausible_max: float = float("inf")
    max_rate_per_sec: float = float("inf")
    max_deviation: float = float("inf")
    threshold: int = 3
    heartbeat_timeout_ticks: int | None = None
    kind: TransferKind = field(default=TransferKind.HEALTH, init=False)


Transfer = (DisjointRelation | DirectionalTransfer | BidirectionalTransfer
            | TemporalConditionalTransfer | CausalConditionalTransfer
            | HealthAssessment)


def directional_legs(transfer: Transfer) -> list[tuple[str, str, tuple[tuple[int, int], ...]]]:
    """Flatten any data-bearing transfer into (producer, consumer, slots) legs."""
    if isinstance(transfer, DirectionalTransfer):
        return [(transfer.producer, transfer.consumer, transfer.slots)]
    if isinstance(transfer, (TemporalConditionalTransfer,
                             CausalConditionalTransfer)):
        return [(transfer.producer, transfer.consumer, transfer.slots)]
    if isinstance(transfer, BidirectionalTransfer):
        return [
            (transfer.task_a, transfer.task_b, transfer.slots_a_to_b),
            (transfer.task_b, transfer.task_a, transfer.slots_b_to_a),
        ]
    return []
