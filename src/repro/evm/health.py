"""Fault detection: output plausibility and heartbeat monitoring.

The paper's failure model for the case study: the primary controller keeps
running but produces *wrong outputs* (the valve wedged at 75 % instead of
11.48 %).  Backups therefore observe the primary's actuation outputs -- not
just its liveness -- and confirm a fault only after a *series* of implausible
outputs (single glitches are routine on wireless links).

Two monitors:

- :class:`OutputPlausibilityMonitor` -- range and rate-of-change checks with
  a consecutive-anomaly confirmation threshold;
- :class:`HeartbeatMonitor` -- crash/silence detection via expected-message
  deadlines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import instrument
from repro.sim.clock import SEC


@dataclass
class Anomaly:
    """One implausible observation."""

    time: int
    value: float
    reason: str


class OutputPlausibilityMonitor:
    """Confirms a fault after ``threshold`` consecutive implausible outputs.

    ``observe`` returns True exactly once, at the moment of confirmation;
    further observations keep returning False until :meth:`reset`.
    """

    def __init__(self, plausible_min: float = float("-inf"),
                 plausible_max: float = float("inf"),
                 max_rate_per_sec: float = float("inf"),
                 max_deviation: float = float("inf"),
                 threshold: int = 3) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.plausible_min = plausible_min
        self.plausible_max = plausible_max
        self.max_rate_per_sec = max_rate_per_sec
        self.max_deviation = max_deviation
        self.threshold = threshold
        self.consecutive = 0
        self.confirmed = False
        self.anomalies: list[Anomaly] = []
        self._last_time: int | None = None
        self._last_value: float | None = None
        self._obs = instrument.health_meters()

    def observe(self, time: int, value: float,
                expected: float | None = None) -> bool:
        """Feed one output sample.  True iff this sample confirms a fault.

        ``expected`` is the monitor's own shadow computation of the same
        output (backups run the control law too); a deviation beyond
        ``max_deviation`` is anomalous even when the raw value is in range --
        this is how the case study's wedged-at-75% valve is caught.
        """
        reason = self._classify(time, value, expected)
        self._last_time = time
        self._last_value = value
        if reason is None:
            self.consecutive = 0
            return False
        self.anomalies.append(Anomaly(time=time, value=value, reason=reason))
        self.consecutive += 1
        if self.consecutive >= self.threshold and not self.confirmed:
            self.confirmed = True
            if self._obs is not None:
                self._obs.faults_confirmed.inc()
            return True
        return False

    def _classify(self, time: int, value: float,
                  expected: float | None) -> str | None:
        if value < self.plausible_min:
            return f"below range ({value} < {self.plausible_min})"
        if value > self.plausible_max:
            return f"above range ({value} > {self.plausible_max})"
        if (expected is not None
                and abs(value - expected) > self.max_deviation):
            return (f"deviates from shadow output "
                    f"(|{value:.3f} - {expected:.3f}| > "
                    f"{self.max_deviation})")
        if (self._last_time is not None and self._last_value is not None
                and time > self._last_time):
            rate = abs(value - self._last_value) / (
                (time - self._last_time) / SEC)
            if rate > self.max_rate_per_sec:
                return (f"rate {rate:.2f}/s exceeds "
                        f"{self.max_rate_per_sec}/s")
        return None

    def reset(self) -> None:
        self.consecutive = 0
        self.confirmed = False
        self._last_time = None
        self._last_value = None


class HeartbeatMonitor:
    """Silence detection: a fault is suspected after ``timeout`` without a beat."""

    def __init__(self, timeout_ticks: int) -> None:
        if timeout_ticks <= 0:
            raise ValueError(f"timeout must be positive, got {timeout_ticks}")
        self.timeout_ticks = timeout_ticks
        self.last_beat: int | None = None
        self.missed_checks = 0
        self._obs = instrument.health_meters()

    def beat(self, time: int) -> None:
        self.last_beat = time

    def is_silent(self, now: int) -> bool:
        """Has the subject been quiet longer than the timeout?"""
        if self.last_beat is None:
            return False  # never heard from; give it until the first beat
        silent = now - self.last_beat > self.timeout_ticks
        if silent:
            self.missed_checks += 1
            if self._obs is not None:
                self._obs.silences.inc()
        return silent
