"""The EVM's eight node-specific operations (paper section 3.1.1).

A thin, explicit facade over the kernel/runtime/optimizer machinery, mirroring
the paper's enumeration:

1.  runtime task management (assign / migrate / partition / replicate);
2.  runtime resource allocation (reservations);
3.  scheduling and schedulability analysis;
4.  priority assignment;
5.  fault/failure detection and adaptation (handler registration);
6.  node membership and data migration;
7.  run-time optimization (BQP);
8.  software attestation.

The parametric flavor of these operations is also exposed to bytecode
programs as host hooks via :func:`register_parametric_hooks`.
"""

from __future__ import annotations

from typing import Callable

from repro.evm.attestation import attest_digest, verify_attestation
from repro.evm.failover import ControllerMode
from repro.evm.optimizer import AssignmentProblem, AssignmentResult, bqp_assign
from repro.evm.runtime import EvmRuntime
from repro.evm.tasks import LogicalTask
from repro.rtos.analysis import (
    AnalysisReport,
    assign_rate_monotonic_priorities,
)
from repro.rtos.reservations import (
    CpuReservation,
    EnergyReservation,
    NetworkReservation,
)
from repro.rtos.task import TaskSpec


class NodeOperations:
    """Operation set bound to one node's runtime."""

    def __init__(self, runtime: EvmRuntime) -> None:
        self.runtime = runtime
        self.kernel = runtime.kernel
        self._fault_handlers: list[Callable[[dict], None]] = []

    # -- 1. runtime task management -----------------------------------
    def assign_task(self, logical: LogicalTask,
                    mode: ControllerMode = ControllerMode.ACTIVE):
        """Instantiate a logical task on this node."""
        return self.runtime.host_task(logical, mode)

    def migrate_task(self, task_name: str, dst: str, on_done=None) -> int:
        """Move a task (code reference + full state) to another node."""
        return self.runtime.migrate_task_to(task_name, dst, on_done)

    def replicate_task(self, task_name: str, dst: str, on_done=None) -> int:
        """Invoke a copy of the task on ``dst`` with the same state
        (same image, but the local instance keeps running)."""
        instance = self.runtime.instances[task_name]
        image = instance.tcb.snapshot_image()
        image["data"] = dict(image["data"])
        image["data"]["memory"] = list(instance.memory)
        return self.runtime.migration.initiate(
            image, dst, instance.logical.required_capabilities, on_done)

    def partition_task(self, task_name: str, dst: str,
                       fraction: float = 0.5, on_done=None) -> int:
        """Split a task: keep (1-fraction) of the WCET here, ship a derived
        task carrying ``fraction`` of the work to ``dst``."""
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0,1), got {fraction}")
        instance = self.runtime.instances[task_name]
        spec = instance.tcb.spec
        remote_wcet = max(1, int(spec.wcet_ticks * fraction))
        local_wcet = max(1, spec.wcet_ticks - remote_wcet)
        image = instance.tcb.snapshot_image()
        image["data"] = dict(image["data"])
        image["data"]["memory"] = list(instance.memory)
        image["spec"] = TaskSpec(
            name=f"{spec.name}.part", wcet_ticks=remote_wcet,
            period_ticks=spec.period_ticks, priority=spec.priority,
            stack_bytes=spec.stack_bytes)
        xfer = self.runtime.migration.initiate(
            image, dst, instance.logical.required_capabilities, on_done)
        # Shrink the local half once the remote half is on its way.
        new_spec = TaskSpec(
            name=spec.name, wcet_ticks=local_wcet,
            period_ticks=spec.period_ticks, deadline_ticks=spec.deadline_ticks,
            priority=spec.priority, offset_ticks=spec.offset_ticks,
            stack_bytes=spec.stack_bytes)
        instance.tcb.spec = new_spec
        return xfer

    # -- 2. runtime resource allocation --------------------------------
    def allocate_cpu(self, task_name: str, budget_ticks: int,
                     period_ticks: int) -> None:
        self.kernel.set_cpu_reservation(
            task_name, CpuReservation(budget_ticks, period_ticks))

    def allocate_network(self, task_name: str, packets: int,
                         period_ticks: int) -> None:
        self.kernel.set_network_reservation(
            task_name, NetworkReservation(packets, period_ticks))

    def allocate_energy(self, task_name: str, joules: float,
                        period_ticks: int) -> None:
        self.kernel.set_energy_reservation(
            task_name, EnergyReservation(joules, period_ticks))

    # -- 3. scheduling and schedulability analysis ----------------------
    def analyze_schedulability(self,
                               extra: list[TaskSpec] | None = None,
                               ) -> AnalysisReport:
        return self.kernel.analyze(extra)

    def can_admit(self, spec: TaskSpec) -> bool:
        return self.kernel.can_admit(spec)

    # -- 4. priority assignment -----------------------------------------
    def reprioritize_rate_monotonic(self) -> dict[str, int]:
        """Re-prioritize the local task-set rate-monotonically.

        Returns the new name -> priority map.  (The in-kernel specs are
        updated in place; running jobs keep their current slice.)
        """
        specs = self.kernel.scheduler.specs()
        reassigned = assign_rate_monotonic_priorities(specs)
        priorities = {}
        for new_spec in reassigned:
            tcb = self.kernel.task(new_spec.name)
            tcb.spec = new_spec
            priorities[new_spec.name] = new_spec.priority
        return priorities

    def set_remote_parameter(self, task_name: str, slot: int,
                             value: float) -> bool:
        """Parametric control: write one memory slot of a logical task on
        every node hosting it (setpoints, thresholds, mode flags)."""
        return self.runtime.poke_remote(task_name, slot, value)

    # -- 5. fault/failure detection and adaptation -----------------------
    def on_fault(self, handler: Callable[[dict], None]) -> None:
        """Register an adaptation handler invoked on local fault reports."""
        self._fault_handlers.append(handler)

    def raise_fault(self, fault: dict) -> None:
        """Feed a fault event into the adaptation handlers."""
        for handler in self._fault_handlers:
            handler(fault)

    # -- 6. node membership and data migration ----------------------------
    def join_component(self) -> None:
        self.runtime.say_hello()

    def evict_member(self, node_id: str) -> None:
        if not self.runtime.is_head:
            raise PermissionError("only the head evicts members")
        self.runtime.vc.evict(node_id)

    # -- 7. run-time optimization ------------------------------------------
    def optimize_assignment(self, problem: AssignmentProblem,
                            ) -> AssignmentResult:
        return bqp_assign(problem)

    # -- 8. software attestation ---------------------------------------------
    def attest(self, image: bytes, nonce: bytes) -> bytes:
        return attest_digest(image, nonce)

    def verify(self, image: bytes, nonce: bytes, digest: bytes) -> bool:
        return verify_attestation(image, nonce, digest)


def register_parametric_hooks(ops: NodeOperations) -> None:
    """Expose parametric-control operations to bytecode via HOST hooks.

    Programs can then e.g. ``host get_time`` / ``host node_util`` /
    ``host sensor_enable`` -- the paper's remotely-triggerable parametric
    control library.
    """
    runtime = ops.runtime
    interpreter = runtime.interpreter

    def get_time(ctx) -> None:
        ctx.push(runtime.engine.now / 1_000_000.0)

    def node_util(ctx) -> None:
        ctx.push(runtime.kernel.scheduler.utilization_now())

    def task_count(ctx) -> None:
        ctx.push(float(len(runtime.kernel.task_names())))

    def sensor_enable(ctx) -> None:
        index = int(ctx.pop())
        names = sorted(runtime.kernel.node.sensors)
        if 0 <= index < len(names):
            runtime.kernel.node.sensors[names[index]].enable()

    def sensor_disable(ctx) -> None:
        index = int(ctx.pop())
        names = sorted(runtime.kernel.node.sensors)
        if 0 <= index < len(names):
            runtime.kernel.node.sensors[names[index]].disable()

    interpreter.register_host("get_time", get_time)
    interpreter.register_host("node_util", node_util)
    interpreter.register_host("task_count", task_count)
    interpreter.register_host("sensor_enable", sensor_enable)
    interpreter.register_host("sensor_disable", sensor_disable)
