"""The EVM instruction set: a FORTH-like stack machine.

Like Mate, programs are tiny stack-machine routines; unlike Mate, the
instruction set is **extensible at runtime** (user-defined words install as
new opcodes via code capsules) and instructions exist for node-to-node
control rather than PC-to-node scripting (host hooks bind ``HOST``/``IN``/
``OUT`` instructions to kernel and network operations).

A :class:`Program` is a sequence of :class:`Instruction` plus the name tables
for host hooks and words it references.  Programs encode to compact bytes --
the unit of attestation, dissemination and migration sizing.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass


class Opcode(enum.IntEnum):
    """Fixed numbering; the wire format depends on these values."""

    HALT = 0
    NOP = 1
    # Stack manipulation
    PUSH = 2      # arg: float constant
    DUP = 3
    DROP = 4
    SWAP = 5
    OVER = 6
    ROT = 7
    # Arithmetic
    ADD = 8
    SUB = 9
    MUL = 10
    DIV = 11
    NEG = 12
    ABS = 13
    MIN = 14
    MAX = 15
    # Comparison / logic (push 1.0 or 0.0)
    LT = 16
    GT = 17
    LE = 18
    GE = 19
    EQ = 20
    NE = 21
    AND = 22
    OR = 23
    NOT = 24
    # Control flow
    JMP = 25      # arg: absolute instruction index
    JZ = 26       # arg: absolute instruction index; pops condition
    CALL = 27     # arg: absolute instruction index; pushes return address
    RET = 28
    # Task memory (the migratable data segment), by integer slot
    LOAD = 29     # arg: slot
    STORE = 30    # arg: slot
    # I/O channels, resolved through host hooks
    IN = 31       # arg: channel index into Program.channels
    OUT = 32      # arg: channel index into Program.channels
    # Host operations (kernel / EVM library calls), by name table index
    HOST = 33     # arg: index into Program.host_names
    # User-defined words (runtime-extensible instructions)
    WORD = 34     # arg: index into Program.word_names


_ARGLESS = {
    Opcode.HALT, Opcode.NOP, Opcode.DUP, Opcode.DROP, Opcode.SWAP,
    Opcode.OVER, Opcode.ROT, Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV,
    Opcode.NEG, Opcode.ABS, Opcode.MIN, Opcode.MAX, Opcode.LT, Opcode.GT,
    Opcode.LE, Opcode.GE, Opcode.EQ, Opcode.NE, Opcode.AND, Opcode.OR,
    Opcode.NOT, Opcode.RET,
}
_FLOAT_ARG = {Opcode.PUSH}
_INT_ARG = {Opcode.JMP, Opcode.JZ, Opcode.CALL, Opcode.LOAD, Opcode.STORE,
            Opcode.IN, Opcode.OUT, Opcode.HOST, Opcode.WORD}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    opcode: Opcode
    arg: float | int | None = None

    def __post_init__(self) -> None:
        if self.opcode in _ARGLESS and self.arg is not None:
            raise ValueError(f"{self.opcode.name} takes no argument")
        if self.opcode in _INT_ARG:
            if not isinstance(self.arg, int) or self.arg < 0:
                raise ValueError(
                    f"{self.opcode.name} needs a non-negative int argument, "
                    f"got {self.arg!r}")
        if self.opcode in _FLOAT_ARG and not isinstance(self.arg, (int, float)):
            raise ValueError(f"{self.opcode.name} needs a numeric argument")

    def __str__(self) -> str:
        if self.arg is None:
            return self.opcode.name.lower()
        return f"{self.opcode.name.lower()} {self.arg}"


@dataclass(frozen=True)
class Program:
    """An immutable, encodable EVM routine.

    ``channels`` names the I/O channels ``IN``/``OUT`` address;
    ``host_names`` the kernel operations ``HOST`` may call;
    ``word_names`` the user-defined words ``WORD`` may invoke.
    """

    name: str
    instructions: tuple[Instruction, ...]
    channels: tuple[str, ...] = ()
    host_names: tuple[str, ...] = ()
    word_names: tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.instructions)

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        """Compact byte encoding (attestation + migration payloads).

        Layout: header with name/tables (length-prefixed UTF-8), then one
        record per instruction: opcode byte, then a 4-byte float32 for PUSH
        or a 2-byte unsigned for int-arg opcodes.
        """
        out = bytearray()
        out += _encode_str(self.name)
        for table in (self.channels, self.host_names, self.word_names):
            out.append(len(table))
            for entry in table:
                out += _encode_str(entry)
        out += struct.pack(">H", len(self.instructions))
        for ins in self.instructions:
            out.append(int(ins.opcode))
            if ins.opcode in _FLOAT_ARG:
                out += struct.pack(">f", float(ins.arg))
            elif ins.opcode in _INT_ARG:
                out += struct.pack(">H", int(ins.arg))
        return bytes(out)

    @classmethod
    def decode(cls, blob: bytes) -> "Program":
        view = memoryview(blob)
        offset = 0
        name, offset = _decode_str(view, offset)
        tables: list[tuple[str, ...]] = []
        for _ in range(3):
            count = view[offset]
            offset += 1
            entries = []
            for _ in range(count):
                entry, offset = _decode_str(view, offset)
                entries.append(entry)
            tables.append(tuple(entries))
        (count,) = struct.unpack_from(">H", view, offset)
        offset += 2
        instructions = []
        for _ in range(count):
            opcode = Opcode(view[offset])
            offset += 1
            arg: float | int | None = None
            if opcode in _FLOAT_ARG:
                (arg,) = struct.unpack_from(">f", view, offset)
                offset += 4
            elif opcode in _INT_ARG:
                (arg,) = struct.unpack_from(">H", view, offset)
                offset += 2
            instructions.append(Instruction(opcode, arg))
        return cls(name=name, instructions=tuple(instructions),
                   channels=tables[0], host_names=tables[1],
                   word_names=tables[2])

    @property
    def size_bytes(self) -> int:
        return len(self.encode())

    def disassemble(self) -> str:
        """Readable listing that :class:`Assembler` can re-assemble."""
        lines = []
        for table, directive in ((self.channels, ".channel"),
                                 (self.host_names, ".host"),
                                 (self.word_names, ".word")):
            for entry in table:
                lines.append(f"{directive} {entry}")
        for i, ins in enumerate(self.instructions):
            lines.append(f"    {ins}    ; {i}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Constant folding (compile-time service for the peephole pass)
# ----------------------------------------------------------------------
# Python-float semantics exactly as the interpreter's handlers compute
# them at run time (NaN propagation, signed zeros, first-operand-wins
# min/max ties), so a folded constant is bit-identical to the value the
# unoptimized dispatch would have produced.
_FOLDABLE_BINOPS = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.MIN: min,
    Opcode.MAX: max,
    Opcode.LT: lambda a, b: 1.0 if a < b else 0.0,
    Opcode.GT: lambda a, b: 1.0 if a > b else 0.0,
    Opcode.LE: lambda a, b: 1.0 if a <= b else 0.0,
    Opcode.GE: lambda a, b: 1.0 if a >= b else 0.0,
    Opcode.EQ: lambda a, b: 1.0 if a == b else 0.0,
    Opcode.NE: lambda a, b: 1.0 if a != b else 0.0,
    Opcode.AND: lambda a, b: 1.0 if (a != 0.0 and b != 0.0) else 0.0,
    Opcode.OR: lambda a, b: 1.0 if (a != 0.0 or b != 0.0) else 0.0,
}


def fold_constants(op: Opcode, a: float, b: float) -> float | None:
    """Compile-time result of ``PUSH a; PUSH b; <op>``.

    Returns ``None`` when the triple cannot be folded without changing
    runtime semantics (non-binop opcodes, or DIV by a zero constant,
    which must keep raising at its own step).
    """
    if op is Opcode.DIV:
        return a / b if b != 0.0 else None
    fn = _FOLDABLE_BINOPS.get(op)
    return fn(a, b) if fn is not None else None


def _encode_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 255:
        raise ValueError(f"string too long to encode: {text[:32]!r}...")
    return bytes([len(raw)]) + raw


def _decode_str(view: memoryview, offset: int) -> tuple[str, int]:
    length = view[offset]
    offset += 1
    text = bytes(view[offset:offset + length]).decode("utf-8")
    return text, offset + length


class AssemblyError(ValueError):
    """Raised on malformed assembly text."""


class Assembler:
    """Two-pass assembler for the textual form.

    Syntax, one statement per line (``;`` or ``#`` starts a comment)::

        .name lowpass            ; program name
        .channel level_in        ; declares channel 0
        .host get_time           ; declares host op 0
        .word pid_step           ; declares word 0

        start:                   ; labels end with ':'
            in level_in          ; channels/hosts/words by name
            push 0.5
            mul
            store 0
            jz start             ; jump targets by label or index
            halt
    """

    def assemble(self, text: str, name: str = "program") -> Program:
        statements, labels, channels, hosts, words, declared_name = (
            self._parse(text))
        if declared_name:
            name = declared_name
        instructions = []
        for line_no, mnemonic, operand in statements:
            instructions.append(self._encode_statement(
                line_no, mnemonic, operand, labels, channels, hosts, words))
        return Program(name=name, instructions=tuple(instructions),
                       channels=tuple(channels), host_names=tuple(hosts),
                       word_names=tuple(words))

    def _parse(self, text: str):
        statements: list[tuple[int, str, str | None]] = []
        labels: dict[str, int] = {}
        channels: list[str] = []
        hosts: list[str] = []
        words: list[str] = []
        name = ""
        for line_no, raw in enumerate(text.splitlines(), start=1):
            line = raw.split(";")[0].split("#")[0].strip()
            if not line:
                continue
            if line.startswith(".name"):
                name = line.split(None, 1)[1].strip()
                continue
            if line.startswith(".channel"):
                channels.append(line.split(None, 1)[1].strip())
                continue
            if line.startswith(".host"):
                hosts.append(line.split(None, 1)[1].strip())
                continue
            if line.startswith(".word"):
                words.append(line.split(None, 1)[1].strip())
                continue
            while line.endswith(":") or ":" in line.split()[0]:
                label, _, rest = line.partition(":")
                label = label.strip()
                if not label.isidentifier():
                    raise AssemblyError(
                        f"line {line_no}: bad label {label!r}")
                if label in labels:
                    raise AssemblyError(
                        f"line {line_no}: duplicate label {label!r}")
                labels[label] = len(statements)
                line = rest.strip()
                if not line:
                    break
            if not line:
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operand = parts[1].strip() if len(parts) > 1 else None
            statements.append((line_no, mnemonic, operand))
        return statements, labels, channels, hosts, words, name

    def _encode_statement(self, line_no: int, mnemonic: str,
                          operand: str | None, labels: dict[str, int],
                          channels: list[str], hosts: list[str],
                          words: list[str]) -> Instruction:
        try:
            opcode = Opcode[mnemonic.upper()]
        except KeyError:
            raise AssemblyError(
                f"line {line_no}: unknown mnemonic {mnemonic!r}") from None
        if opcode in _ARGLESS:
            if operand is not None:
                raise AssemblyError(
                    f"line {line_no}: {mnemonic} takes no operand")
            return Instruction(opcode)
        if operand is None:
            raise AssemblyError(f"line {line_no}: {mnemonic} needs an operand")
        if opcode in _FLOAT_ARG:
            try:
                return Instruction(opcode, float(operand))
            except ValueError:
                raise AssemblyError(
                    f"line {line_no}: bad number {operand!r}") from None
        if opcode in (Opcode.JMP, Opcode.JZ, Opcode.CALL):
            if operand in labels:
                return Instruction(opcode, labels[operand])
            if operand.isdigit():
                return Instruction(opcode, int(operand))
            raise AssemblyError(
                f"line {line_no}: unknown label {operand!r}")
        if opcode in (Opcode.LOAD, Opcode.STORE):
            if not operand.isdigit():
                raise AssemblyError(
                    f"line {line_no}: {mnemonic} needs a slot number")
            return Instruction(opcode, int(operand))
        table = {Opcode.IN: channels, Opcode.OUT: channels,
                 Opcode.HOST: hosts, Opcode.WORD: words}[opcode]
        if operand.isdigit():
            return Instruction(opcode, int(operand))
        try:
            return Instruction(opcode, table.index(operand))
        except ValueError:
            raise AssemblyError(
                f"line {line_no}: {operand!r} not declared "
                f"(missing .channel/.host/.word?)") from None
