"""Logical tasks: node-independent units of control work.

The paper's central abstraction shift: tasks are assigned to the Virtual
Component *as a whole*, not bound to physical nodes at compile time.  A
:class:`LogicalTask` declares what the work is (an EVM bytecode program),
what it costs (timing contract), and what a hosting node must provide
(capabilities).  The EVM decides -- and revises at runtime -- which physical
node actually runs it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.rtos.task import TaskSpec


@dataclass(frozen=True)
class LogicalTask:
    """One unit of control functionality owned by a Virtual Component.

    ``program_name`` names the code capsule holding the control law; nodes
    must have that capsule installed (dissemination handles this) before
    they can host the task.  ``required_capabilities`` gate placement: e.g.
    ``{"controller"}`` or ``{"actuate:lts_valve"}``.  ``replicas`` is the
    total number of instances the VC maintains (1 primary + N-1 backups).
    """

    name: str
    program_name: str
    period_ticks: int
    wcet_ticks: int
    priority: int = 10
    stack_bytes: int = 256
    memory_slots: int = 16
    initial_memory: tuple[float, ...] = ()
    required_capabilities: frozenset[str] = frozenset()
    replicas: int = 2

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(f"task {self.name!r}: replicas must be >= 1")
        if len(self.initial_memory) > self.memory_slots:
            raise ValueError(
                f"task {self.name!r}: initial memory exceeds declared slots")

    def to_spec(self, suffix: str = "") -> TaskSpec:
        """The nano-RK timing contract for one hosted instance."""
        return TaskSpec(
            name=self.name + suffix,
            wcet_ticks=self.wcet_ticks,
            period_ticks=self.period_ticks,
            priority=self.priority,
            stack_bytes=self.stack_bytes,
        )

    def build_memory(self) -> list[float]:
        """A fresh data segment, initial values then zeros."""
        memory = list(self.initial_memory)
        memory.extend(0.0 for _ in range(self.memory_slots - len(memory)))
        return memory

    @property
    def utilization(self) -> float:
        return self.wcet_ticks / self.period_ticks

    def with_period(self, period_ticks: int) -> "LogicalTask":
        """Re-rated copy (mode changes re-rate control loops)."""
        return replace(self, period_ticks=period_ticks)
