"""Virtual Components: logical node groups with task tables.

A Virtual Component is "a composition of inter-connected communicating
physical components defined by object transfer relationships" -- the unit
that outlives any individual node.  This module is the *data model*: members
with capabilities, logical tasks, per-task assignments (primary + backups +
modes), and the transfer relationships.  The head node's runtime holds the
authoritative copy and replicates relevant slices to members.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evm.failover import ControllerMode
from repro.evm.object_transfer import HealthAssessment, Transfer
from repro.evm.tasks import LogicalTask


@dataclass
class VcMember:
    """One physical node's standing in the component."""

    node_id: str
    capabilities: frozenset[str]
    cpu_capacity: float = 0.7        # max schedulable utilization offered
    joined_at: int = 0
    healthy: bool = True

    def can_host(self, task: LogicalTask) -> bool:
        return task.required_capabilities <= self.capabilities


@dataclass
class TaskAssignment:
    """Where one logical task currently lives."""

    task: LogicalTask
    primary: str
    backups: list[str] = field(default_factory=list)
    modes: dict[str, ControllerMode] = field(default_factory=dict)
    epoch: int = 0

    def __post_init__(self) -> None:
        if not self.modes:
            self.modes = {self.primary: ControllerMode.ACTIVE}
            for backup in self.backups:
                self.modes[backup] = ControllerMode.BACKUP

    @property
    def hosts(self) -> list[str]:
        return [self.primary] + list(self.backups)

    def mode_of(self, node_id: str) -> ControllerMode:
        return self.modes.get(node_id, ControllerMode.DORMANT)


class MembershipError(RuntimeError):
    """Raised for invalid membership operations."""


class VirtualComponent:
    """The authoritative component state (lives at the head)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.members: dict[str, VcMember] = {}
        self.tasks: dict[str, LogicalTask] = {}
        self.assignments: dict[str, TaskAssignment] = {}
        self.transfers: list[Transfer] = []
        self.epoch = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def admit(self, member: VcMember) -> None:
        """Admit a node (membership is not fixed; see EVM operation 6)."""
        if member.node_id in self.members:
            raise MembershipError(
                f"{member.node_id!r} already a member of {self.name!r}")
        self.members[member.node_id] = member
        self.epoch += 1

    def evict(self, node_id: str) -> VcMember:
        if node_id not in self.members:
            raise MembershipError(f"{node_id!r} not a member of {self.name!r}")
        member = self.members.pop(node_id)
        self.epoch += 1
        return member

    def mark_unhealthy(self, node_id: str) -> None:
        if node_id in self.members:
            self.members[node_id].healthy = False
            self.epoch += 1

    def mark_healthy(self, node_id: str) -> None:
        if node_id in self.members:
            self.members[node_id].healthy = True
            self.epoch += 1

    def elect_head(self) -> str:
        """Deterministic head election: lowest id among healthy members."""
        healthy = [m.node_id for m in self.members.values() if m.healthy]
        if not healthy:
            raise MembershipError(f"no healthy members in {self.name!r}")
        return min(healthy)

    # ------------------------------------------------------------------
    # Task table
    # ------------------------------------------------------------------
    def add_task(self, task: LogicalTask) -> None:
        if task.name in self.tasks:
            raise ValueError(f"task {task.name!r} already declared")
        self.tasks[task.name] = task

    def assign(self, task_name: str, primary: str,
               backups: list[str] | None = None) -> TaskAssignment:
        """Install/replace the placement of ``task_name``."""
        if task_name not in self.tasks:
            raise KeyError(f"unknown task {task_name!r}")
        task = self.tasks[task_name]
        backups = backups or []
        for node_id in [primary] + backups:
            member = self.members.get(node_id)
            if member is None:
                raise MembershipError(
                    f"{node_id!r} is not a member of {self.name!r}")
            if not member.can_host(task):
                raise MembershipError(
                    f"{node_id!r} lacks capabilities "
                    f"{sorted(task.required_capabilities - member.capabilities)}"
                    f" for task {task_name!r}")
        previous = self.assignments.get(task_name)
        assignment = TaskAssignment(
            task=task, primary=primary, backups=backups,
            epoch=(previous.epoch + 1) if previous else 0)
        self.assignments[task_name] = assignment
        return assignment

    def promote(self, task_name: str, new_primary: str,
                demote_to: ControllerMode = ControllerMode.INDICATOR,
                ) -> TaskAssignment:
        """Failover: make a backup the primary, demote the old one."""
        assignment = self.assignments[task_name]
        if new_primary not in assignment.hosts:
            raise MembershipError(
                f"{new_primary!r} does not host {task_name!r}")
        old_primary = assignment.primary
        backups = [n for n in assignment.hosts if n != new_primary]
        new_assignment = TaskAssignment(
            task=assignment.task, primary=new_primary,
            backups=[n for n in backups if n != old_primary],
            epoch=assignment.epoch + 1)
        new_assignment.modes[old_primary] = demote_to
        for backup in new_assignment.backups:
            new_assignment.modes[backup] = ControllerMode.BACKUP
        new_assignment.modes[new_primary] = ControllerMode.ACTIVE
        self.assignments[task_name] = new_assignment
        return new_assignment

    def set_mode(self, task_name: str, node_id: str,
                 mode: ControllerMode) -> None:
        assignment = self.assignments[task_name]
        assignment.modes[node_id] = mode

    def active_controller(self, task_name: str) -> str:
        return self.assignments[task_name].primary

    def hosts_of(self, task_name: str) -> list[str]:
        return self.assignments[task_name].hosts

    def tasks_on(self, node_id: str) -> list[str]:
        return [name for name, a in self.assignments.items()
                if node_id in a.hosts]

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def add_transfer(self, transfer: Transfer) -> None:
        self.transfers.append(transfer)

    def health_assessments(self) -> list[HealthAssessment]:
        return [t for t in self.transfers if isinstance(t, HealthAssessment)]

    def monitors_of(self, subject_node: str) -> list[HealthAssessment]:
        return [t for t in self.health_assessments()
                if t.subject == subject_node]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def utilization_of(self, node_id: str) -> float:
        """Offered load on a node from tasks whose mode there computes."""
        total = 0.0
        for assignment in self.assignments.values():
            mode = assignment.mode_of(node_id)
            if node_id in assignment.hosts and mode.computes:
                total += assignment.task.utilization
        return total

    def describe(self) -> str:
        """Human-readable table (the Fig. 1 / Fig. 6a style summary)."""
        lines = [f"VirtualComponent {self.name!r} (epoch {self.epoch})"]
        lines.append(f"  members: {', '.join(sorted(self.members)) or '-'}")
        for name, assignment in sorted(self.assignments.items()):
            modes = ", ".join(
                f"{n}={assignment.mode_of(n).value}"
                for n in sorted(assignment.modes))
            lines.append(f"  task {name}: primary={assignment.primary} "
                         f"[{modes}] epoch={assignment.epoch}")
        return "\n".join(lines)
