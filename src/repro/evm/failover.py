"""Controller modes and head arbitration.

Each hosted instance of a logical task is in one of four modes (the case
study's lifecycle):

- **ACTIVE** -- computes and actuates;
- **BACKUP** -- computes (shadowing state via object transfers) and watches
  the active instance's outputs, but does not actuate;
- **INDICATOR** -- passive display/telemetry only (the demoted ex-primary
  immediately after failover);
- **DORMANT** -- installed but idle (the terminal state of the transition).

When a backup confirms a fault it informs the Virtual Component's head; the
head's :class:`Arbitrator` picks the replacement among capable candidates and
issues the mode changes.  Scoring prefers healthy nodes with capacity
headroom, then lower hop distance to the actuator, then stable ids -- a
deterministic rule every node can verify.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ControllerMode(enum.Enum):
    ACTIVE = "active"
    BACKUP = "backup"
    INDICATOR = "indicator"
    DORMANT = "dormant"

    @property
    def computes(self) -> bool:
        """Does this mode run the control law each cycle?"""
        return self in (ControllerMode.ACTIVE, ControllerMode.BACKUP)

    @property
    def actuates(self) -> bool:
        return self is ControllerMode.ACTIVE


@dataclass(frozen=True)
class Candidate:
    """What the head knows about a node when arbitrating."""

    node_id: str
    capable: bool
    healthy: bool
    utilization_headroom: float
    hops_to_actuator: int = 1


class ArbitrationError(RuntimeError):
    """Raised when no viable replacement controller exists."""


class Arbitrator:
    """Deterministic replacement selection."""

    def select(self, candidates: list[Candidate],
               exclude: set[str] | None = None) -> str:
        """Pick the new primary.  Raises :class:`ArbitrationError` if none.

        Order: capable & healthy first, then max headroom, then min hops,
        then lexicographic node id (total order => every replica that runs
        the same inputs reaches the same verdict).
        """
        exclude = exclude or set()
        viable = [c for c in candidates
                  if c.capable and c.healthy and c.node_id not in exclude
                  and c.utilization_headroom > 0.0]
        if not viable:
            raise ArbitrationError(
                "no capable healthy candidate with headroom "
                f"(examined {len(candidates)}, excluded {sorted(exclude)})")
        best = min(viable, key=lambda c: (-c.utilization_headroom,
                                          c.hops_to_actuator, c.node_id))
        return best.node_id


@dataclass
class FailoverPolicy:
    """Tunables of the failover state machine (ablated in benchmarks).

    ``demote_mode``: where the faulty ex-primary goes immediately
    (INDICATOR per the case study).  ``dormant_delay_ticks``: how long
    after failover until the ex-primary is parked DORMANT (the paper's
    T3 - T2 = 200 s).
    """

    detection_threshold: int = 3
    demote_mode: ControllerMode = ControllerMode.INDICATOR
    dormant_delay_ticks: int = 200 * 1_000_000
    reactivation_allowed: bool = True


@dataclass
class ModeChange:
    """One arbitration outcome, as shipped to the affected nodes."""

    task: str
    new_primary: str
    demoted: str | None
    modes: dict[str, ControllerMode] = field(default_factory=dict)
    epoch: int = 0
