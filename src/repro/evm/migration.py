"""Task migration: codec + transfer protocol.

Migration moves a task's full image -- "the task control block, stack, data
and timing/precedence-related metadata" -- from one node to another:

1. the source sends ``MIG_REQUEST`` (spec summary, capabilities, image size);
2. the destination runs a capability check and schedulability admission test,
   answering ``MIG_ACCEPT`` or ``MIG_REJECT``;
3. the source streams the encoded image in MTU-sized fragments;
4. the destination reassembles, NACKs holes for selective retransmission,
   verifies **attestation** over the assembled bytes, installs the task, and
   answers ``MIG_DONE``;
5. the source deactivates its copy.

The image codec is explicit (no pickling): a small tagged binary format for
the primitives a TCB image contains, with :class:`~repro.rtos.task.TaskSpec`
as a dedicated tag.  Round-tripping is property-tested.
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.evm.attestation import attest_digest, verify_attestation
from repro.rtos.task import TaskSpec
from repro.sim.clock import SEC

# ----------------------------------------------------------------------
# Image codec
# ----------------------------------------------------------------------
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"f"
_TAG_INT = b"I"
_TAG_FLOAT = b"F"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_DICT = b"D"
_TAG_SPEC = b"P"


class CodecError(ValueError):
    """Raised on unencodable values or malformed blobs."""


def encode_value(value: Any) -> bytes:
    """Encode a TCB-image value tree to bytes."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _encode_into(out: bytearray, value: Any) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        out += _TAG_INT
        out += struct.pack(">q", value)
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += struct.pack(">d", value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _TAG_STR
        out += struct.pack(">I", len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out += _TAG_BYTES
        out += struct.pack(">I", len(value))
        out += bytes(value)
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST
        out += struct.pack(">I", len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        out += _TAG_DICT
        out += struct.pack(">I", len(value))
        for key, item in value.items():
            _encode_into(out, key)
            _encode_into(out, item)
    elif isinstance(value, TaskSpec):
        out += _TAG_SPEC
        _encode_into(out, {
            "name": value.name,
            "wcet_ticks": value.wcet_ticks,
            "period_ticks": value.period_ticks,
            "deadline_ticks": value.deadline_ticks,
            "priority": value.priority,
            "offset_ticks": value.offset_ticks,
            "stack_bytes": value.stack_bytes,
        })
    else:
        raise CodecError(
            f"cannot encode {type(value).__name__} in a task image")


def decode_value(blob: bytes) -> Any:
    """Decode bytes produced by :func:`encode_value`."""
    value, offset = _decode_from(memoryview(blob), 0)
    if offset != len(blob):
        raise CodecError(f"{len(blob) - offset} trailing bytes after value")
    return value


def _decode_from(view: memoryview, offset: int) -> tuple[Any, int]:
    if offset >= len(view):
        raise CodecError("truncated blob")
    tag = bytes(view[offset:offset + 1])
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        (value,) = struct.unpack_from(">q", view, offset)
        return value, offset + 8
    if tag == _TAG_FLOAT:
        (value,) = struct.unpack_from(">d", view, offset)
        return value, offset + 8
    if tag == _TAG_STR:
        (length,) = struct.unpack_from(">I", view, offset)
        offset += 4
        raw = bytes(view[offset:offset + length])
        if len(raw) != length:
            raise CodecError("truncated string")
        return raw.decode("utf-8"), offset + length
    if tag == _TAG_BYTES:
        (length,) = struct.unpack_from(">I", view, offset)
        offset += 4
        raw = bytes(view[offset:offset + length])
        if len(raw) != length:
            raise CodecError("truncated bytes")
        return raw, offset + length
    if tag == _TAG_LIST:
        (count,) = struct.unpack_from(">I", view, offset)
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode_from(view, offset)
            items.append(item)
        return items, offset
    if tag == _TAG_DICT:
        (count,) = struct.unpack_from(">I", view, offset)
        offset += 4
        result = {}
        for _ in range(count):
            key, offset = _decode_from(view, offset)
            value, offset = _decode_from(view, offset)
            result[key] = value
        return result, offset
    if tag == _TAG_SPEC:
        fields, offset = _decode_from(view, offset)
        return TaskSpec(**fields), offset
    raise CodecError(f"unknown tag {tag!r}")


# ----------------------------------------------------------------------
# Transfer protocol
# ----------------------------------------------------------------------
FRAGMENT_BYTES = 64
"""Image bytes per fragment (fits an RT-Link slot with headers)."""

_xfer_counter = itertools.count(1)


@dataclass
class MigrationOutcome:
    """Terminal report for one migration attempt."""

    xfer_id: int
    task_name: str
    src: str
    dst: str
    ok: bool
    reason: str = ""
    started_at: int = 0
    finished_at: int = 0
    bytes_sent: int = 0
    fragments: int = 0

    @property
    def duration_ticks(self) -> int:
        return self.finished_at - self.started_at


@dataclass
class _OutgoingTransfer:
    xfer_id: int
    task_name: str
    dst: str
    blob: bytes
    digest: bytes
    started_at: int
    on_done: Callable[[MigrationOutcome], None] | None
    fragments_sent: int = 0
    accepted: bool = False


@dataclass
class _IncomingTransfer:
    xfer_id: int
    task_name: str
    src: str
    total_fragments: int
    image_size: int
    digest: bytes
    started_at: int
    chunks: dict[int, bytes] = field(default_factory=dict)
    nacks_sent: int = 0


class MigrationManager:
    """Both halves of the migration protocol for one node.

    The hosting runtime supplies ``send(dst, kind, payload, size_bytes)``
    plus the local capability/admission/install callbacks; this class owns
    the transfer state machines.
    """

    def __init__(
        self,
        engine,
        node_id: str,
        send: Callable[[str, str, Any, int], bool],
        can_accept: Callable[[str, TaskSpec, frozenset], tuple[bool, str]],
        install: Callable[[dict], tuple[bool, str]],
        trace=None,
        timeout_ticks: int = 30 * SEC,
    ) -> None:
        self.engine = engine
        self.node_id = node_id
        self.send = send
        self.can_accept = can_accept
        self.install = install
        self.trace = trace
        self.timeout_ticks = timeout_ticks
        self.outgoing: dict[int, _OutgoingTransfer] = {}
        self.incoming: dict[int, _IncomingTransfer] = {}
        self.completed: list[MigrationOutcome] = []

    # ------------------------------------------------------------------
    # Source side
    # ------------------------------------------------------------------
    def initiate(self, image: dict, dst: str,
                 required_capabilities: frozenset = frozenset(),
                 on_done: Callable[[MigrationOutcome], None] | None = None,
                 ) -> int:
        """Start migrating ``image`` (a TCB snapshot) to ``dst``."""
        xfer_id = next(_xfer_counter)
        blob = encode_value(image)
        digest = attest_digest(blob, _nonce(xfer_id))
        spec: TaskSpec = image["spec"]
        transfer = _OutgoingTransfer(
            xfer_id=xfer_id, task_name=spec.name, dst=dst, blob=blob,
            digest=digest, started_at=self.engine.now, on_done=on_done)
        self.outgoing[xfer_id] = transfer
        self._record("evm.mig.initiate", task=spec.name, dst=dst,
                     bytes=len(blob), xfer=xfer_id)
        self.send(dst, "evm.mig.request", {
            "xfer_id": xfer_id,
            "spec": spec,
            "capabilities": sorted(required_capabilities),
            "image_size": len(blob),
            "fragments": _fragment_count(len(blob)),
            "digest": digest,
        }, 48)
        self.engine.post(self.timeout_ticks, self._check_timeout, xfer_id)
        return xfer_id

    def _check_timeout(self, xfer_id: int) -> None:
        transfer = self.outgoing.get(xfer_id)
        if transfer is None:
            return
        self._finish_outgoing(transfer, ok=False, reason="timeout")

    def _finish_outgoing(self, transfer: _OutgoingTransfer, ok: bool,
                         reason: str = "") -> None:
        self.outgoing.pop(transfer.xfer_id, None)
        outcome = MigrationOutcome(
            xfer_id=transfer.xfer_id, task_name=transfer.task_name,
            src=self.node_id, dst=transfer.dst, ok=ok, reason=reason,
            started_at=transfer.started_at, finished_at=self.engine.now,
            bytes_sent=len(transfer.blob),
            fragments=transfer.fragments_sent)
        self.completed.append(outcome)
        self._record("evm.mig.finish", task=transfer.task_name, ok=ok,
                     reason=reason, xfer=transfer.xfer_id)
        if transfer.on_done is not None:
            transfer.on_done(outcome)

    # ------------------------------------------------------------------
    # Message dispatch (both sides)
    # ------------------------------------------------------------------
    def handle_message(self, src: str, kind: str, payload: Any) -> bool:
        """Route one ``evm.mig.*`` message.  Returns True if consumed."""
        if kind == "evm.mig.request":
            self._on_request(src, payload)
        elif kind == "evm.mig.accept":
            self._on_accept(payload)
        elif kind == "evm.mig.reject":
            self._on_reject(payload)
        elif kind == "evm.mig.frag":
            self._on_fragment(src, payload)
        elif kind == "evm.mig.nack":
            self._on_nack(payload)
        elif kind == "evm.mig.done":
            self._on_done(payload)
        else:
            return False
        return True

    # ------------------------------------------------------------------
    # Destination side
    # ------------------------------------------------------------------
    def _on_request(self, src: str, payload: dict) -> None:
        spec: TaskSpec = payload["spec"]
        xfer_id = payload["xfer_id"]
        ok, reason = self.can_accept(
            src, spec, frozenset(payload["capabilities"]))
        self._record("evm.mig.request_rx", task=spec.name, src=src,
                     accepted=ok, reason=reason)
        if not ok:
            self.send(src, "evm.mig.reject",
                      {"xfer_id": xfer_id, "reason": reason}, 16)
            return
        self.incoming[xfer_id] = _IncomingTransfer(
            xfer_id=xfer_id, task_name=spec.name, src=src,
            total_fragments=payload["fragments"],
            image_size=payload["image_size"], digest=payload["digest"],
            started_at=self.engine.now)
        self.send(src, "evm.mig.accept", {"xfer_id": xfer_id}, 8)

    def _on_accept(self, payload: dict) -> None:
        transfer = self.outgoing.get(payload["xfer_id"])
        if transfer is None:
            return
        transfer.accepted = True
        self._send_fragments(transfer, range(_fragment_count(
            len(transfer.blob))))

    def _on_reject(self, payload: dict) -> None:
        transfer = self.outgoing.get(payload["xfer_id"])
        if transfer is None:
            return
        self._finish_outgoing(transfer, ok=False,
                              reason=payload.get("reason", "rejected"))

    def _send_fragments(self, transfer: _OutgoingTransfer,
                        indices) -> None:
        total = _fragment_count(len(transfer.blob))
        for index in indices:
            chunk = transfer.blob[index * FRAGMENT_BYTES:
                                  (index + 1) * FRAGMENT_BYTES]
            transfer.fragments_sent += 1
            self.send(transfer.dst, "evm.mig.frag", {
                "xfer_id": transfer.xfer_id,
                "index": index,
                "total": total,
                "chunk": chunk,
            }, len(chunk) + 8)

    def _on_fragment(self, src: str, payload: dict) -> None:
        transfer = self.incoming.get(payload["xfer_id"])
        if transfer is None:
            return
        transfer.chunks[payload["index"]] = payload["chunk"]
        if payload["index"] == payload["total"] - 1:
            self._try_complete(transfer)

    def _try_complete(self, transfer: _IncomingTransfer) -> None:
        missing = [i for i in range(transfer.total_fragments)
                   if i not in transfer.chunks]
        if missing:
            transfer.nacks_sent += 1
            self._record("evm.mig.nack", task=transfer.task_name,
                         missing=len(missing))
            self.send(transfer.src, "evm.mig.nack", {
                "xfer_id": transfer.xfer_id,
                "missing": missing,
            }, 8 + 2 * len(missing))
            return
        blob = b"".join(transfer.chunks[i]
                        for i in range(transfer.total_fragments))
        self.incoming.pop(transfer.xfer_id, None)
        if not verify_attestation(blob, _nonce(transfer.xfer_id),
                                  transfer.digest):
            self._record("evm.mig.attest_fail", task=transfer.task_name)
            self.send(transfer.src, "evm.mig.done", {
                "xfer_id": transfer.xfer_id, "ok": False,
                "reason": "attestation failed"}, 16)
            return
        image = decode_value(blob)
        ok, reason = self.install(image)
        self._record("evm.mig.install", task=transfer.task_name, ok=ok,
                     reason=reason)
        self.send(transfer.src, "evm.mig.done", {
            "xfer_id": transfer.xfer_id, "ok": ok, "reason": reason}, 16)

    def _on_nack(self, payload: dict) -> None:
        transfer = self.outgoing.get(payload["xfer_id"])
        if transfer is None:
            return
        # Selective retransmission; resend the last fragment too so the
        # receiver re-runs its completion check.
        missing = list(payload["missing"])
        total = _fragment_count(len(transfer.blob))
        if total - 1 not in missing:
            missing.append(total - 1)
        self._send_fragments(transfer, missing)

    def _on_done(self, payload: dict) -> None:
        transfer = self.outgoing.get(payload["xfer_id"])
        if transfer is None:
            return
        self._finish_outgoing(transfer, ok=payload["ok"],
                              reason=payload.get("reason", ""))

    def _record(self, category: str, **data: Any) -> None:
        if self.trace is not None:
            self.trace.record(self.engine.now, category, self.node_id, **data)


def _fragment_count(blob_len: int) -> int:
    return max(1, -(-blob_len // FRAGMENT_BYTES))


def _nonce(xfer_id: int) -> bytes:
    return struct.pack(">Q", xfer_id)
