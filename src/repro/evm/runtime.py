"""The per-node EVM runtime (the "super task").

One :class:`EvmRuntime` runs on every node, layered on its nano-RK kernel
and MAC.  Together the runtimes implement the Virtual Component machinery:

- **hosted instances** -- local copies of logical tasks, installed as kernel
  tasks, executing their control-law bytecode per period according to their
  mode (ACTIVE computes + actuates, BACKUP shadows, INDICATOR/DORMANT idle);
- **object transfers** -- after each ACTIVE job, the producer's declared
  memory slots are broadcast; consumers apply them (subject to temporal /
  causal conditions), the actuator-side *operation switch* accepts commands
  only from the current primary, and monitors overhear them for fault
  detection;
- **health assessment** -- backups compare the primary's published outputs
  with their own shadow computation and report confirmed faults to the head;
- **failover** -- the head arbitrates a replacement, broadcasts mode
  changes, and parks the demoted primary DORMANT after a delay;
- **state sharing** -- passive (periodic snapshots from the primary) or
  active (backups recompute from the same sensor inputs);
- **capsule dissemination** and **task migration** ride the same messaging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.evm.bytecode import Program
from repro.evm.capsule import Capsule, CapsuleStore
from repro.evm.failover import (
    Arbitrator,
    ArbitrationError,
    Candidate,
    ControllerMode,
    FailoverPolicy,
)
from repro.evm.health import HeartbeatMonitor, OutputPlausibilityMonitor
from repro.evm.interpreter import Interpreter, VmError
from repro.evm.migration import MigrationManager
from repro.evm.object_transfer import (
    CausalConditionalTransfer,
    FaultResponse,
    HealthAssessment,
    TemporalConditionalTransfer,
    directional_legs,
)
from repro.evm.tasks import LogicalTask
from repro.evm.virtual_component import VcMember, VirtualComponent
from repro.net.packet import BROADCAST, Packet
from repro.obs import instrument
from repro.rtos.kernel import AdmissionRefused, NanoRK
from repro.rtos.task import TaskSpec, Tcb
from repro.sim.clock import MS, SEC
from repro.sim.trace import Trace

EVM_TASK_NAME = "EVM"


@dataclass
class StateSharingPolicy:
    """How backups keep their shadow state aligned with the primary."""

    mode: str = "active"            # "active" (recompute) or "passive"
    snapshot_every_jobs: int = 4    # passive: snapshot cadence
    snapshot_slots: int = 10        # memory slots per snapshot (slot budget)


@dataclass
class FloodDiscipline:
    """Duplicate-suppression policy for the VC's broadcast traffic.

    On a wide mesh every broadcast arrives at every runtime once per
    flood, and viral capsule dissemination makes each adopter a fresh
    flood origin -- the dense-neighborhood storm.  The discipline bounds
    that without changing what any runtime ultimately applies:

    - ``capsule_fanout_bound``: a freshly adopted capsule is *not*
      re-disseminated when fragments for it were already heard from at
      least this many distinct spreaders (the neighborhood is already
      covered).  ``0`` keeps unbounded viral spread.
    - ``state_stale_drop``: drop passive-sharing snapshots whose job
      counter does not advance on what this backup last applied
      (re-ordered or duplicated flood copies).
    - ``mode_dedup``: apply each exact mode-change broadcast once,
      keyed by (task, epoch, primary, modes) -- re-applies are
      idempotent, so this only saves the bookkeeping work.

    The default-constructed discipline disables everything, preserving
    earlier behavior bit for bit.
    """

    capsule_fanout_bound: int = 0
    state_stale_drop: bool = False
    mode_dedup: bool = False


@dataclass
class RuntimeStats:
    """Counters the experiments and benchmarks read."""

    data_published: int = 0
    data_applied: int = 0
    rejected_by_switch: int = 0
    stale_dropped: int = 0
    causal_blocked: int = 0
    snapshots_sent: int = 0
    snapshots_applied: int = 0
    faults_reported: int = 0
    failovers_executed: int = 0
    heartbeats_sent: int = 0
    vm_faults: int = 0
    capsules_installed: int = 0
    messages_handled: int = 0
    capsule_rebroadcasts_suppressed: int = 0
    snapshots_stale_dropped: int = 0
    mode_duplicates_dropped: int = 0


class HostedInstance:
    """One local copy of a logical task."""

    def __init__(self, logical: LogicalTask, mode: ControllerMode) -> None:
        self.logical = logical
        self.mode = mode
        self.memory = logical.build_memory()
        self.tcb: Tcb | None = None
        self.input_bindings: dict[int, Callable[[], float]] = {}
        self.output_bindings: dict[int, Callable[[float], None]] = {}
        self.forced_outputs: dict[int, float] = {}
        self.failsafe_outputs: dict[int, float] = {}
        self.failsafe_engaged = False
        self.jobs_run = 0
        self.vm_faults = 0
        self.last_job_time: int | None = None

    @property
    def name(self) -> str:
        return self.logical.name

    def published_value(self, slot: int) -> float:
        """What this instance exposes for ``slot`` (fault injection applies)."""
        if slot in self.forced_outputs:
            return self.forced_outputs[slot]
        return self.memory[slot]


class _MonitorState:
    """One health-assessment relationship as held by the monitoring node."""

    def __init__(self, assessment: HealthAssessment,
                 observe_slot: int) -> None:
        self.assessment = assessment
        self.observe_slot = observe_slot
        self.plausibility = OutputPlausibilityMonitor(
            plausible_min=assessment.plausible_min,
            plausible_max=assessment.plausible_max,
            max_rate_per_sec=assessment.max_rate_per_sec,
            max_deviation=assessment.max_deviation,
            threshold=assessment.threshold)
        self.heartbeat = (
            HeartbeatMonitor(assessment.heartbeat_timeout_ticks)
            if assessment.heartbeat_timeout_ticks else None)
        self.reported = False


class EvmRuntime:
    """The EVM super-task for one node."""

    def __init__(
        self,
        kernel: NanoRK,
        vc: VirtualComponent,
        capabilities: frozenset[str] = frozenset(),
        trace: Trace | None = None,
        failover_policy: FailoverPolicy | None = None,
        state_sharing: StateSharingPolicy | None = None,
        arbitration_holdoff_ticks: int = 0,
        housekeeping_period_ticks: int = 100 * MS,
        evm_priority: int = 0,
        flood_discipline: FloodDiscipline | None = None,
    ) -> None:
        self.kernel = kernel
        self.engine = kernel.engine
        self.vc = vc
        self.capabilities = capabilities
        self.trace = trace
        self.policy = failover_policy or FailoverPolicy()
        self.state_sharing = state_sharing or StateSharingPolicy()
        self.flood = flood_discipline or FloodDiscipline()
        self.arbitration_holdoff_ticks = arbitration_holdoff_ticks
        self.stats = RuntimeStats()
        self.interpreter = Interpreter()
        self.capsules = CapsuleStore(rom_bank=kernel.node.mcu.rom,
                                     on_install=self._on_capsule_installed)
        self.instances: dict[str, HostedInstance] = {}
        self.monitors: list[_MonitorState] = []
        self._capsule_buffers: dict[tuple, dict[int, bytes]] = {}
        # Flood-discipline caches: spreaders heard per capsule version,
        # last snapshot job counter applied per (src, task), and the set
        # of mode broadcasts already applied.
        self._capsule_sources: dict[tuple, set[str]] = {}
        self._snapshot_seq: dict[tuple[str, str], int] = {}
        self._modes_applied: set[tuple] = set()
        # Local view of each task's primary (the OS-1 operation switch).
        self.task_primaries: dict[str, tuple[str, int]] = {}
        self.head_id: str | None = None
        self.arbitrator = Arbitrator()
        self._pending_failovers: set[tuple[str, str, int]] = set()
        self._obs = instrument.evm_meters()
        # Sim time each pending failover's report arrived at: the gap to
        # the completed promotion is the failover-latency histogram.
        self._fault_seen_at: dict[tuple[str, str], int] = {}
        self.migration = MigrationManager(
            engine=self.engine, node_id=self.node_id,
            send=self._send_message, can_accept=self._migration_can_accept,
            install=self._migration_install, trace=trace)
        self._install_evm_task(housekeeping_period_ticks, evm_priority)
        if self.kernel.mac is not None:
            self.kernel.mac.set_receive_handler(self.deliver)

    @property
    def node_id(self) -> str:
        return self.kernel.node_id

    @property
    def is_head(self) -> bool:
        return self.head_id == self.node_id

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _install_evm_task(self, period: int, priority: int) -> None:
        spec = TaskSpec(name=EVM_TASK_NAME, wcet_ticks=1 * MS,
                        period_ticks=period, priority=priority,
                        stack_bytes=512)
        self.kernel.create_task(spec, self._housekeeping, admit=False)

    CAPSULE_FRAGMENT_BYTES = 64

    def install_capsule(self, capsule: Capsule, disseminate: bool = False,
                        ) -> bool:
        """Install a code capsule locally (optionally rebroadcast)."""
        was_new = self.capsules.install(capsule)
        if was_new:
            self.stats.capsules_installed += 1
            if disseminate:
                self._disseminate_capsule(capsule)
        return was_new

    def _disseminate_capsule(self, capsule: Capsule) -> None:
        """Broadcast a capsule in slot-sized fragments (viral update)."""
        chunk_size = self.CAPSULE_FRAGMENT_BYTES
        total = max(1, -(-len(capsule.blob) // chunk_size))
        for index in range(total):
            chunk = capsule.blob[index * chunk_size:(index + 1) * chunk_size]
            self._broadcast("evm.capfrag", {
                "name": capsule.name,
                "version": capsule.version,
                "digest": capsule.digest,
                "index": index,
                "total": total,
                "chunk": chunk,
            }, len(chunk) + 12)

    def _on_capsule_installed(self, capsule: Capsule) -> None:
        program = capsule.program()
        if program.word_names or self.interpreter.has_word(program.name):
            self.interpreter.register_word(program)
        else:
            self.interpreter.register_word(program)

    def configure_from_vc(self, head_id: str | None = None) -> None:
        """Instantiate this node's share of the VC's task table.

        Reads the (already populated) :class:`VirtualComponent`: installs a
        hosted instance for every task assigned here, wires monitors for the
        health assessments this node performs, and records every task's
        primary for the operation switch.
        """
        self.head_id = head_id or self.vc.elect_head()
        for task_name, assignment in self.vc.assignments.items():
            self.task_primaries[task_name] = (assignment.primary,
                                              assignment.epoch)
            if self.node_id in assignment.hosts:
                self.host_task(assignment.task,
                               assignment.mode_of(self.node_id))
        for assessment in self.vc.health_assessments():
            if assessment.monitor == self.node_id:
                self._add_monitor(assessment)

    def host_task(self, logical: LogicalTask,
                  mode: ControllerMode) -> HostedInstance:
        """Install a local instance of ``logical`` as a kernel task."""
        if logical.name in self.instances:
            raise ValueError(
                f"{self.node_id!r} already hosts {logical.name!r}")
        if not self.capsules.has(logical.program_name):
            raise KeyError(
                f"{self.node_id!r} lacks capsule {logical.program_name!r} "
                f"for task {logical.name!r}")
        instance = HostedInstance(logical, mode)
        instance.tcb = self.kernel.create_task(
            logical.to_spec(), lambda tcb, n=logical.name: self._run_job(n))
        self.instances[logical.name] = instance
        if mode is ControllerMode.DORMANT:
            self.kernel.suspend_task(logical.name)
        self._record("evm.host", task=logical.name, mode=mode.value)
        return instance

    def _add_monitor(self, assessment: HealthAssessment,
                     observe_slot: int | None = None) -> None:
        if observe_slot is None:
            observe_slot = self._default_observe_slot(assessment.task)
        self.monitors.append(_MonitorState(assessment, observe_slot))

    def _default_observe_slot(self, task_name: str) -> int:
        """First published slot of the task's outgoing transfers."""
        for transfer in self.vc.transfers:
            for producer, _consumer, slots in directional_legs(transfer):
                if producer == task_name and slots:
                    return slots[0][0]
        return 0

    # ------------------------------------------------------------------
    # Instance I/O bindings and fault injection
    # ------------------------------------------------------------------
    def bind_input(self, task_name: str, slot: int,
                   fn: Callable[[], float]) -> None:
        """Before each job, ``memory[slot] = fn()`` (plant/sensor input)."""
        self.instances[task_name].input_bindings[slot] = fn

    def bind_output(self, task_name: str, slot: int,
                    fn: Callable[[float], None]) -> None:
        """After each ACTIVE job, ``fn(memory[slot])`` (plant actuation)."""
        self.instances[task_name].output_bindings[slot] = fn

    def set_failsafe(self, task_name: str, slot: int, value: float) -> None:
        self.instances[task_name].failsafe_outputs[slot] = value

    def inject_output_fault(self, task_name: str, slot: int,
                            value: float) -> None:
        """Wedge the task's published output (the case-study fault)."""
        self.instances[task_name].forced_outputs[slot] = value
        self._record("evm.fault_injected", task=task_name, slot=slot,
                     value=value)

    def clear_output_fault(self, task_name: str) -> None:
        self.instances[task_name].forced_outputs.clear()

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------
    def _run_job(self, task_name: str) -> None:
        instance = self.instances.get(task_name)
        if instance is None or not instance.mode.computes:
            return
        instance.jobs_run += 1
        instance.last_job_time = self.engine.now
        for slot, fn in instance.input_bindings.items():
            instance.memory[slot] = float(fn())
        program = self._program_of(instance)
        if program is not None:
            try:
                self.interpreter.execute(program, instance.memory)
            except VmError as exc:
                instance.vm_faults += 1
                self.stats.vm_faults += 1
                self._record("evm.vm_fault", task=task_name, error=str(exc))
                return
        if instance.mode.actuates:
            self._drive_outputs(instance)
            self._publish_transfers(instance)
            self._maybe_snapshot(instance)
        elif instance.failsafe_engaged:
            for slot, value in instance.failsafe_outputs.items():
                binding = instance.output_bindings.get(slot)
                if binding is not None:
                    binding(value)

    def _program_of(self, instance: HostedInstance) -> Program | None:
        name = instance.logical.program_name
        if not self.capsules.has(name):
            return None
        return self.capsules.get(name).program()

    def _drive_outputs(self, instance: HostedInstance) -> None:
        if instance.failsafe_engaged:
            for slot, value in instance.failsafe_outputs.items():
                binding = instance.output_bindings.get(slot)
                if binding is not None:
                    binding(value)
            return
        for slot, binding in instance.output_bindings.items():
            binding(instance.published_value(slot))

    def _publish_transfers(self, instance: HostedInstance) -> None:
        for transfer in self.vc.transfers:
            for producer, consumer, slots in directional_legs(transfer):
                if producer != instance.name:
                    continue
                if isinstance(transfer, CausalConditionalTransfer):
                    guard = instance.memory[transfer.guard_slot]
                    if guard < transfer.guard_threshold:
                        self.stats.causal_blocked += 1
                        continue
                values = [(src, dst, instance.published_value(src))
                          for src, dst in slots]
                payload = {
                    "task": instance.name,
                    "consumer": consumer,
                    "values": values,
                    "sent_at": self.engine.now,
                    "epoch": self.task_primaries.get(
                        instance.name, (self.node_id, 0))[1],
                }
                if isinstance(transfer, TemporalConditionalTransfer):
                    payload["max_age"] = transfer.max_age_ticks
                self.stats.data_published += 1
                self._broadcast("evm.data", payload, 10 + 10 * len(values))

    def _maybe_snapshot(self, instance: HostedInstance) -> None:
        if self.state_sharing.mode != "passive":
            return
        if instance.jobs_run % self.state_sharing.snapshot_every_jobs != 0:
            return
        shared = instance.memory[:self.state_sharing.snapshot_slots]
        payload = {
            "task": instance.name,
            "memory": list(shared),
            "jobs": instance.jobs_run,
        }
        self.stats.snapshots_sent += 1
        self._broadcast("evm.state", payload, 8 + 8 * len(shared))

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    _BULK_KINDS = ("evm.mig.frag", "evm.capfrag", "evm.state")

    def _send_message(self, dst: str, kind: str, payload: Any,
                      size_bytes: int) -> bool:
        # Bulk payloads (migration/capsule fragments, state snapshots) ride
        # the low-priority queue so they never starve control traffic on
        # the node's TDMA slot.
        priority = 1 if kind in self._BULK_KINDS else 0
        packet = Packet(src=self.node_id, dst=dst, kind=kind,
                        payload=payload, size_bytes=size_bytes,
                        created_at=self.engine.now, priority=priority)
        return self.kernel.send_packet(EVM_TASK_NAME, packet)

    def _broadcast(self, kind: str, payload: Any, size_bytes: int) -> bool:
        return self._send_message(BROADCAST, kind, payload, size_bytes)

    def deliver(self, packet: Packet) -> None:
        """Entry point for every EVM frame arriving at this node."""
        if self.kernel.crashed:
            return
        kind = packet.kind
        if not kind.startswith("evm."):
            return
        self.stats.messages_handled += 1
        self._feed_heartbeats(packet.src)
        if kind == "evm.data":
            self._on_data(packet)
        elif kind == "evm.state":
            self._on_state(packet)
        elif kind == "evm.heartbeat":
            pass  # heartbeat side effect already applied
        elif kind == "evm.fault":
            self._on_fault_report(packet)
        elif kind == "evm.mode":
            self._on_mode_change(packet)
        elif kind == "evm.capsule":
            self._on_capsule(packet)
        elif kind == "evm.capfrag":
            self._on_capsule_fragment(packet)
        elif kind == "evm.hello":
            self._on_hello(packet)
        elif kind == "evm.halt":
            self._on_halt(packet)
        elif kind == "evm.poke":
            self._on_poke(packet)
        elif kind.startswith("evm.mig."):
            self.migration.handle_message(packet.src, kind, packet.payload)

    def _feed_heartbeats(self, src: str) -> None:
        for monitor in self.monitors:
            if monitor.heartbeat is not None and monitor.assessment.subject == src:
                monitor.heartbeat.beat(self.engine.now)

    # -- data ----------------------------------------------------------
    def _on_data(self, packet: Packet) -> None:
        payload = packet.payload
        task_name = payload["task"]
        self._monitor_observation(packet.src, task_name, payload)
        consumer = payload["consumer"]
        instance = self.instances.get(consumer)
        if instance is None:
            return
        # Temporal-conditional: drop stale samples.
        max_age = payload.get("max_age")
        if max_age is not None and (self.engine.now - payload["sent_at"]
                                    > max_age):
            self.stats.stale_dropped += 1
            return
        # The operation switch: accept only the current primary's commands.
        primary, _epoch = self.task_primaries.get(task_name,
                                                  (packet.src, 0))
        if packet.src != primary:
            self.stats.rejected_by_switch += 1
            self._record("evm.switch_reject", task=task_name, src=packet.src,
                         primary=primary)
            return
        for _src_slot, dst_slot, value in payload["values"]:
            if 0 <= dst_slot < len(instance.memory):
                instance.memory[dst_slot] = value
        self.stats.data_applied += 1

    def _monitor_observation(self, src: str, task_name: str,
                             payload: dict) -> None:
        for monitor in self.monitors:
            assessment = monitor.assessment
            if assessment.task != task_name or assessment.subject != src:
                continue
            observed = None
            for src_slot, _dst_slot, value in payload["values"]:
                if src_slot == monitor.observe_slot:
                    observed = value
                    break
            if observed is None:
                continue
            expected = self._shadow_value(task_name, monitor.observe_slot)
            confirmed = monitor.plausibility.observe(
                self.engine.now, observed, expected)
            if confirmed and not monitor.reported:
                monitor.reported = True
                self._report_fault(assessment, reason=(
                    monitor.plausibility.anomalies[-1].reason
                    if monitor.plausibility.anomalies else "implausible"))

    def _shadow_value(self, task_name: str, slot: int) -> float | None:
        instance = self.instances.get(task_name)
        if instance is None or instance.mode is not ControllerMode.BACKUP:
            return None
        if instance.jobs_run == 0:
            return None
        return instance.memory[slot]

    # -- state sharing ---------------------------------------------------
    def _on_state(self, packet: Packet) -> None:
        payload = packet.payload
        instance = self.instances.get(payload["task"])
        if instance is None or instance.mode is not ControllerMode.BACKUP:
            return
        if self.state_sharing.mode != "passive":
            return
        primary, _epoch = self.task_primaries.get(payload["task"],
                                                  (packet.src, 0))
        if packet.src != primary:
            return
        if self.flood.state_stale_drop:
            key = (packet.src, payload["task"])
            if payload["jobs"] <= self._snapshot_seq.get(key, -1):
                self.stats.snapshots_stale_dropped += 1
                return
            self._snapshot_seq[key] = payload["jobs"]
        memory = payload["memory"]
        instance.memory[:len(memory)] = memory
        self.stats.snapshots_applied += 1

    # -- fault reporting and failover -------------------------------------
    def _report_fault(self, assessment: HealthAssessment,
                      reason: str) -> None:
        self.stats.faults_reported += 1
        if self._obs is not None:
            self._obs.faults_reported.inc()
        self._record("evm.fault_detected", task=assessment.task,
                     subject=assessment.subject, reason=reason,
                     response=assessment.response.value)
        payload = {
            "task": assessment.task,
            "subject": assessment.subject,
            "reason": reason,
            "response": assessment.response.value,
            "reporter": self.node_id,
            "epoch": self.task_primaries.get(assessment.task, ("", 0))[1],
        }
        if assessment.response is FaultResponse.LOCAL_FAILSAFE:
            self._engage_failsafe(assessment.task)
        if assessment.response is FaultResponse.HALT:
            self._send_message(assessment.subject, "evm.halt",
                               {"task": assessment.task}, 8)
        if self.is_head:
            self._handle_fault_report(payload)
        elif self.head_id is not None:
            self._send_message(self.head_id, "evm.fault", payload, 32)

    def _engage_failsafe(self, task_name: str) -> None:
        instance = self.instances.get(task_name)
        if instance is not None and instance.failsafe_outputs:
            instance.failsafe_engaged = True
            self._record("evm.failsafe", task=task_name)

    def _on_fault_report(self, packet: Packet) -> None:
        if not self.is_head:
            return
        self._handle_fault_report(packet.payload)

    def _handle_fault_report(self, payload: dict) -> None:
        task_name = payload["task"]
        subject = payload["subject"]
        epoch = payload["epoch"]
        if payload["response"] not in ("backup", "halt"):
            self._record("evm.alert", task=task_name, subject=subject,
                         reason=payload["reason"])
            return
        key = (task_name, subject, epoch)
        if key in self._pending_failovers:
            return
        assignment = self.vc.assignments.get(task_name)
        if assignment is None or assignment.primary != subject:
            return  # stale report; failover already happened
        self._pending_failovers.add(key)
        if self._obs is not None:
            self._fault_seen_at.setdefault((task_name, subject),
                                           self.engine.now)
        self._record("evm.failover_pending", task=task_name, subject=subject,
                     holdoff=self.arbitration_holdoff_ticks)
        if self.arbitration_holdoff_ticks > 0:
            self.engine.post(self.arbitration_holdoff_ticks,
                             self._execute_failover, task_name, subject)
        else:
            self._execute_failover(task_name, subject)

    def _execute_failover(self, task_name: str, faulty_node: str) -> None:
        assignment = self.vc.assignments.get(task_name)
        if assignment is None or assignment.primary != faulty_node:
            return
        candidates = []
        for node_id in assignment.backups:
            member = self.vc.members.get(node_id)
            if member is None:
                continue
            headroom = member.cpu_capacity - self.vc.utilization_of(node_id)
            candidates.append(Candidate(
                node_id=node_id,
                capable=member.can_host(assignment.task),
                healthy=member.healthy,
                utilization_headroom=headroom))
        try:
            new_primary = self.arbitrator.select(candidates,
                                                 exclude={faulty_node})
        except ArbitrationError as exc:
            if self._obs is not None:
                self._obs.failovers_failed.inc()
            self._record("evm.failover_failed", task=task_name,
                         reason=str(exc))
            return
        self.vc.mark_unhealthy(faulty_node)
        new_assignment = self.vc.promote(task_name, new_primary,
                                         demote_to=self.policy.demote_mode)
        self.stats.failovers_executed += 1
        if self._obs is not None:
            now = self.engine.now
            seen = self._fault_seen_at.pop((task_name, faulty_node), now)
            self._obs.failovers.inc()
            self._obs.failover_latency.observe((now - seen) / SEC)
        self._record("evm.failover", task=task_name, new_primary=new_primary,
                     demoted=faulty_node, epoch=new_assignment.epoch)
        self._broadcast_modes(task_name, new_assignment)
        if self.policy.dormant_delay_ticks > 0:
            self.engine.post(self.policy.dormant_delay_ticks,
                             self._park_dormant, task_name, faulty_node,
                             new_assignment.epoch)

    def _park_dormant(self, task_name: str, node_id: str,
                      epoch: int) -> None:
        assignment = self.vc.assignments.get(task_name)
        if assignment is None or assignment.epoch != epoch:
            return
        self.vc.set_mode(task_name, node_id, ControllerMode.DORMANT)
        self._record("evm.dormant", task=task_name, node=node_id)
        self._broadcast_modes(task_name, assignment)

    def _broadcast_modes(self, task_name: str, assignment) -> None:
        payload = {
            "task": task_name,
            "primary": assignment.primary,
            "epoch": assignment.epoch,
            "modes": {node: mode.value
                      for node, mode in assignment.modes.items()},
        }
        self._broadcast("evm.mode", payload, 16 + 8 * len(assignment.modes))
        # The head applies the change locally too (no self-delivery on MAC).
        self._apply_mode_change(payload)

    def _on_mode_change(self, packet: Packet) -> None:
        self._apply_mode_change(packet.payload)

    def _apply_mode_change(self, payload: dict) -> None:
        task_name = payload["task"]
        if self.flood.mode_dedup:
            # Re-applying an identical mode broadcast is idempotent; the
            # applied-set just skips the redundant bookkeeping (relayed
            # flood copies on dense meshes).
            fingerprint = (task_name, payload["epoch"], payload["primary"],
                           tuple(sorted(payload["modes"].items())))
            if fingerprint in self._modes_applied:
                self.stats.mode_duplicates_dropped += 1
                return
            self._modes_applied.add(fingerprint)
        known_primary, known_epoch = self.task_primaries.get(task_name,
                                                             ("", -1))
        if payload["epoch"] < known_epoch:
            return  # stale
        self.task_primaries[task_name] = (payload["primary"],
                                          payload["epoch"])
        if payload["primary"] != known_primary:
            # Watchers of the fresh primary start from a clean slate,
            # including a heartbeat grace beat: the new primary was
            # legitimately silent while it shadowed as a backup.
            for monitor in self.monitors:
                if (monitor.assessment.task == task_name
                        and monitor.assessment.subject == payload["primary"]):
                    monitor.plausibility.reset()
                    monitor.reported = False
                    if monitor.heartbeat is not None:
                        monitor.heartbeat.beat(self.engine.now)
        instance = self.instances.get(task_name)
        if instance is None:
            return
        new_mode_name = payload["modes"].get(self.node_id)
        if new_mode_name is None:
            return
        new_mode = ControllerMode(new_mode_name)
        if new_mode is instance.mode:
            return
        old_mode = instance.mode
        instance.mode = new_mode
        self._record("evm.mode_change", task=task_name,
                     old=old_mode.value, new=new_mode.value,
                     epoch=payload["epoch"])
        if new_mode is ControllerMode.DORMANT:
            if self.kernel.has_task(task_name):
                self.kernel.suspend_task(task_name)
        elif old_mode is ControllerMode.DORMANT:
            if self.kernel.has_task(task_name):
                self.kernel.resume_task(task_name)

    # -- capsules / membership / halt -------------------------------------
    def _on_capsule(self, packet: Packet) -> None:
        capsule: Capsule = packet.payload
        if self.flood.capsule_fanout_bound:
            self._capsule_sources.setdefault(
                (capsule.name, capsule.version), set()).add(packet.src)
        self._adopt_capsule(capsule)

    def _on_capsule_fragment(self, packet: Packet) -> None:
        payload = packet.payload
        key = (payload["name"], payload["version"])
        if self.capsules.has(payload["name"], payload["version"]):
            return  # already current; ignore the re-broadcast storm
        if self.flood.capsule_fanout_bound:
            self._capsule_sources.setdefault(key, set()).add(packet.src)
        buffer = self._capsule_buffers.setdefault(key, {})
        buffer[payload["index"]] = payload["chunk"]
        if len(buffer) < payload["total"]:
            return
        blob = b"".join(buffer[i] for i in range(payload["total"]))
        self._capsule_buffers.pop(key, None)
        capsule = Capsule(name=payload["name"], version=payload["version"],
                          blob=blob, digest=payload["digest"])
        self._adopt_capsule(capsule)

    def _adopt_capsule(self, capsule: Capsule) -> None:
        try:
            was_new = self.capsules.install(capsule)
        except Exception as exc:  # noqa: BLE001 - corrupt capsule contained
            self._record("evm.capsule_rejected", name=capsule.name,
                         error=str(exc))
            return
        if was_new:
            self.stats.capsules_installed += 1
            # Viral dissemination: news travels onward -- unless enough
            # distinct spreaders were already heard pushing this exact
            # version, in which case the neighborhood is covered and one
            # more flood origin only adds to the storm.
            bound = self.flood.capsule_fanout_bound
            heard = self._capsule_sources.pop(
                (capsule.name, capsule.version), ())
            if bound and len(heard) >= bound:
                self.stats.capsule_rebroadcasts_suppressed += 1
            else:
                self._disseminate_capsule(capsule)

    def _on_hello(self, packet: Packet) -> None:
        if not self.is_head:
            return
        payload = packet.payload
        if packet.src in self.vc.members:
            return
        self.vc.admit(VcMember(
            node_id=packet.src,
            capabilities=frozenset(payload.get("capabilities", ())),
            joined_at=self.engine.now))
        self._record("evm.admitted", node=packet.src)
        self._send_message(packet.src, "evm.welcome",
                           {"vc": self.vc.name, "head": self.node_id}, 16)

    def say_hello(self) -> None:
        """Announce this node to the component head (join protocol)."""
        self._broadcast("evm.hello", {
            "capabilities": sorted(self.capabilities),
            "capsules": self.capsules.summary(),
        }, 24)

    def _on_halt(self, packet: Packet) -> None:
        task_name = packet.payload["task"]
        if self.kernel.has_task(task_name):
            self.kernel.suspend_task(task_name)
            if task_name in self.instances:
                self.instances[task_name].mode = ControllerMode.DORMANT
            self._record("evm.halted", task=task_name, by=packet.src)

    # -- on-line capacity expansion (head only) -----------------------------
    def update_assignment(self, task_name: str, primary: str,
                          backups: list[str]) -> None:
        """Head operation: re-declare a task's placement (e.g. after
        replicating it to a new node) and broadcast the new modes --
        the paper's on-line capacity expansion."""
        if not self.is_head:
            raise PermissionError("only the head updates assignments")
        previous = self.vc.assignments.get(task_name)
        assignment = self.vc.assign(task_name, primary, backups)
        if previous is not None:
            assignment.epoch = previous.epoch + 1
        self._record("evm.assignment_updated", task=task_name,
                     primary=primary, backups=",".join(backups))
        self._broadcast_modes(task_name, assignment)

    # -- parametric control ------------------------------------------------
    def poke_remote(self, task_name: str, slot: int, value: float) -> bool:
        """Write a memory slot of every hosted instance of ``task_name``
        across the component (remote parametric control: setpoint changes,
        mode flags, gains kept in memory).  Applied locally too."""
        self._apply_poke(task_name, slot, value)
        return self._broadcast("evm.poke", {
            "task": task_name, "slot": slot, "value": float(value)}, 16)

    def _on_poke(self, packet: Packet) -> None:
        payload = packet.payload
        self._apply_poke(payload["task"], payload["slot"], payload["value"])

    def _apply_poke(self, task_name: str, slot: int, value: float) -> None:
        instance = self.instances.get(task_name)
        if instance is None:
            return
        if not 0 <= slot < len(instance.memory):
            return
        instance.memory[slot] = float(value)
        self._record("evm.poked", task=task_name, slot=slot, value=value)

    # ------------------------------------------------------------------
    # Migration callbacks
    # ------------------------------------------------------------------
    def _migration_can_accept(self, src: str, spec: TaskSpec,
                              required: frozenset) -> tuple[bool, str]:
        if not required <= self.capabilities:
            missing = sorted(required - self.capabilities)
            return False, f"missing capabilities {missing}"
        if self.kernel.has_task(spec.name):
            return False, f"task {spec.name!r} already present"
        if not self.kernel.can_admit(spec):
            return False, "schedulability admission failed"
        return True, ""

    def _migration_install(self, image: dict) -> tuple[bool, str]:
        spec: TaskSpec = image["spec"]
        task_name = spec.name
        logical = None
        if task_name in self.vc.tasks:
            logical = self.vc.tasks[task_name]
        # A migrated-in instance is ACTIVE only if this node is (or becomes)
        # the task's primary; replicas arrive as shadowing backups.
        primary, _epoch = self.task_primaries.get(task_name,
                                                  (self.node_id, 0))
        mode = (ControllerMode.ACTIVE if primary == self.node_id
                else ControllerMode.BACKUP)
        try:
            if logical is not None and self.capsules.has(logical.program_name):
                instance = HostedInstance(logical, mode)
                instance.tcb = self.kernel.create_task(
                    spec, lambda tcb, n=task_name: self._run_job(n))
                instance.tcb.restore_image(image)
                memory = image["data"].get("memory")
                if memory is not None:
                    instance.memory = list(memory)
                self.instances[task_name] = instance
            else:
                tcb = self.kernel.create_task(spec, None)
                tcb.restore_image(image)
        except AdmissionRefused as exc:
            return False, str(exc)
        except Exception as exc:  # noqa: BLE001 - install must not crash
            return False, repr(exc)
        return True, ""

    def migrate_task_to(self, task_name: str, dst: str,
                        on_done=None) -> int:
        """EVM operation: move a hosted task (with state) to another node."""
        instance = self.instances.get(task_name)
        if instance is None:
            tcb = self.kernel.task(task_name)
            image = tcb.snapshot_image()
        else:
            tcb = instance.tcb
            image = tcb.snapshot_image()
            image["data"] = dict(image["data"])
            image["data"]["memory"] = list(instance.memory)
        required = (instance.logical.required_capabilities
                    if instance is not None else frozenset())

        def _finish(outcome) -> None:
            if outcome.ok:
                if self.kernel.has_task(task_name):
                    self.kernel.kill_task(task_name)
                self.instances.pop(task_name, None)
            if on_done is not None:
                on_done(outcome)

        return self.migration.initiate(image, dst, required, _finish)

    # ------------------------------------------------------------------
    # Housekeeping (the periodic EVM super-task body)
    # ------------------------------------------------------------------
    def _housekeeping(self, _tcb: Tcb) -> None:
        now = self.engine.now
        for monitor in self.monitors:
            if monitor.heartbeat is None or monitor.reported:
                continue
            # Silence only matters for the controller currently in charge;
            # demoted/backup instances are legitimately quiet.
            primary, _epoch = self.task_primaries.get(
                monitor.assessment.task, ("", 0))
            if monitor.assessment.subject != primary:
                continue
            if monitor.heartbeat.is_silent(now):
                monitor.reported = True
                self._report_fault(monitor.assessment,
                                   reason="heartbeat timeout")

    def _record(self, category: str, **data: Any) -> None:
        if self.trace is not None:
            self.trace.record(self.engine.now, category, self.node_id,
                              **data)
