"""Runtime task-assignment optimization via Binary Quadratic Programming.

The paper (EVM operation 7) optimizes resource allocation and logical-task to
physical-node mapping at runtime with BQP.  The formulation:

    minimize   sum_t sum_n c[t][n] * x[t,n]
             + sum_{t<u} traffic[t,u] * hops(n(t), n(u))
    s.t.       each task on exactly one node,
               per-node utilization within capacity,
               capability feasibility (c[t][n] = inf if node n can't host t).

Solvers:

- :func:`bqp_assign` -- exact enumeration with feasibility pruning for small
  instances, falling back to greedy + steepest-descent local search (moves
  and swaps) above ``exact_limit`` candidate combinations;
- :func:`greedy_assign` -- the baseline the paper's "provably minimal
  degradation" claim is benchmarked against.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.evm.tasks import LogicalTask
from repro.evm.virtual_component import VcMember

INFEASIBLE = math.inf


@dataclass
class AssignmentProblem:
    """One placement instance."""

    tasks: list[LogicalTask]
    nodes: list[VcMember]
    # Affinity cost of placing task t on node n (beyond feasibility);
    # e.g. hop distance from the node to the task's sensor/actuator.
    affinity: dict[tuple[str, str], float] = field(default_factory=dict)
    # Pairwise traffic weight between tasks (object-transfer volume).
    traffic: dict[tuple[str, str], float] = field(default_factory=dict)
    # Hop distance between nodes (symmetric; missing => 1 if distinct).
    hops: dict[tuple[str, str], int] = field(default_factory=dict)

    def placement_cost(self, task: LogicalTask, node: VcMember) -> float:
        if not node.healthy or not node.can_host(task):
            return INFEASIBLE
        return self.affinity.get((task.name, node.node_id), 0.0)

    def hop_distance(self, a: str, b: str) -> int:
        if a == b:
            return 0
        return self.hops.get((a, b), self.hops.get((b, a), 1))

    def pair_traffic(self, t: str, u: str) -> float:
        return self.traffic.get((t, u), self.traffic.get((u, t), 0.0))


@dataclass
class AssignmentResult:
    """Solution: task name -> node id, with its objective value."""

    placement: dict[str, str]
    cost: float
    feasible: bool
    explored: int = 0
    method: str = ""

    def node_of(self, task_name: str) -> str:
        return self.placement[task_name]


def evaluate(problem: AssignmentProblem,
             placement: dict[str, str]) -> float:
    """Objective value of a complete placement (inf if infeasible)."""
    nodes_by_id = {n.node_id: n for n in problem.nodes}
    load: dict[str, float] = {}
    total = 0.0
    for task in problem.tasks:
        node_id = placement.get(task.name)
        if node_id is None or node_id not in nodes_by_id:
            return INFEASIBLE
        node = nodes_by_id[node_id]
        cost = problem.placement_cost(task, node)
        if cost == INFEASIBLE:
            return INFEASIBLE
        total += cost
        load[node_id] = load.get(node_id, 0.0) + task.utilization
    for node_id, used in load.items():
        if used > nodes_by_id[node_id].cpu_capacity + 1e-12:
            return INFEASIBLE
    names = [t.name for t in problem.tasks]
    for t, u in itertools.combinations(names, 2):
        weight = problem.pair_traffic(t, u)
        if weight:
            total += weight * problem.hop_distance(placement[t], placement[u])
    return total


def greedy_assign(problem: AssignmentProblem) -> AssignmentResult:
    """Place tasks one at a time on the cheapest feasible node.

    Order: heaviest utilization first (best-fit-decreasing flavor).  The
    marginal cost includes traffic to already-placed tasks.
    """
    placement: dict[str, str] = {}
    load: dict[str, float] = {n.node_id: 0.0 for n in problem.nodes}
    ordered = sorted(problem.tasks, key=lambda t: -t.utilization)
    for task in ordered:
        best_node, best_cost = None, INFEASIBLE
        for node in problem.nodes:
            cost = problem.placement_cost(task, node)
            if cost == INFEASIBLE:
                continue
            if load[node.node_id] + task.utilization > node.cpu_capacity + 1e-12:
                continue
            for placed_task, placed_node in placement.items():
                weight = problem.pair_traffic(task.name, placed_task)
                if weight:
                    cost += weight * problem.hop_distance(node.node_id,
                                                          placed_node)
            if cost < best_cost or (cost == best_cost and best_node is not None
                                    and node.node_id < best_node):
                best_node, best_cost = node.node_id, cost
        if best_node is None:
            return AssignmentResult(placement={}, cost=INFEASIBLE,
                                    feasible=False, method="greedy")
        placement[task.name] = best_node
        load[best_node] += task.utilization
    return AssignmentResult(placement=placement,
                            cost=evaluate(problem, placement),
                            feasible=True, method="greedy")


def bqp_assign(problem: AssignmentProblem,
               exact_limit: int = 250_000) -> AssignmentResult:
    """Solve the BQP: exact when small, local search otherwise."""
    combos = len(problem.nodes) ** max(1, len(problem.tasks))
    if combos <= exact_limit:
        return _exact(problem)
    return _local_search(problem)


def _exact(problem: AssignmentProblem) -> AssignmentResult:
    names = [t.name for t in problem.tasks]
    node_ids = [n.node_id for n in problem.nodes]
    best_placement: dict[str, str] = {}
    best_cost = INFEASIBLE
    explored = 0
    # Pre-prune: per-task feasible node lists.
    feasible_nodes: list[list[str]] = []
    nodes_by_id = {n.node_id: n for n in problem.nodes}
    for task in problem.tasks:
        options = [n.node_id for n in problem.nodes
                   if problem.placement_cost(task, n) != INFEASIBLE]
        if not options:
            return AssignmentResult(placement={}, cost=INFEASIBLE,
                                    feasible=False, method="bqp-exact")
        feasible_nodes.append(options)
    for combo in itertools.product(*feasible_nodes):
        explored += 1
        placement = dict(zip(names, combo))
        cost = evaluate(problem, placement)
        if cost < best_cost:
            best_cost = cost
            best_placement = placement
    return AssignmentResult(placement=best_placement, cost=best_cost,
                            feasible=best_cost != INFEASIBLE,
                            explored=explored, method="bqp-exact")


def _local_search(problem: AssignmentProblem,
                  max_rounds: int = 200) -> AssignmentResult:
    seed = greedy_assign(problem)
    if not seed.feasible:
        return AssignmentResult(placement={}, cost=INFEASIBLE,
                                feasible=False, method="bqp-local")
    placement = dict(seed.placement)
    cost = seed.cost
    names = [t.name for t in problem.tasks]
    node_ids = [n.node_id for n in problem.nodes]
    explored = 0
    for _ in range(max_rounds):
        improved = False
        # Moves: relocate one task.
        for name in names:
            original = placement[name]
            for node_id in node_ids:
                if node_id == original:
                    continue
                placement[name] = node_id
                explored += 1
                candidate = evaluate(problem, placement)
                if candidate < cost - 1e-12:
                    cost = candidate
                    improved = True
                    original = node_id
                else:
                    placement[name] = original
        # Swaps: exchange two tasks' nodes.
        for a, b in itertools.combinations(names, 2):
            if placement[a] == placement[b]:
                continue
            placement[a], placement[b] = placement[b], placement[a]
            explored += 1
            candidate = evaluate(problem, placement)
            if candidate < cost - 1e-12:
                cost = candidate
                improved = True
            else:
                placement[a], placement[b] = placement[b], placement[a]
        if not improved:
            break
    return AssignmentResult(placement=placement, cost=cost, feasible=True,
                            explored=explored, method="bqp-local")
