"""Software attestation.

When a node receives code or data from a peer (capsule dissemination, task
migration), it attests the image before activation: a digest over the bytes
keyed by a challenge nonce, compared against the digest computed by the
sender over its reference copy.  Corruption anywhere in the image changes the
digest.  (Real sensor-network attestation also measures *where* code lives
and response timing; we model the integrity check, which is the property the
EVM's activation path depends on.)
"""

from __future__ import annotations

import hashlib
import hmac

DIGEST_BYTES = 8
"""Truncated digest length carried on the wire (embedded-budget sized)."""


def attest_digest(image: bytes, nonce: bytes) -> bytes:
    """Challenge-response digest over ``image`` keyed by ``nonce``."""
    if not isinstance(image, (bytes, bytearray)):
        raise TypeError(f"image must be bytes, got {type(image).__name__}")
    if len(nonce) == 0:
        raise ValueError("nonce must be non-empty")
    mac = hmac.new(bytes(nonce), bytes(image), hashlib.sha256)
    return mac.digest()[:DIGEST_BYTES]


def verify_attestation(image: bytes, nonce: bytes, digest: bytes) -> bool:
    """Does ``digest`` match ``image`` under ``nonce``?  Constant-time."""
    expected = attest_digest(image, nonce)
    return hmac.compare_digest(expected, bytes(digest))


class AttestationFailure(RuntimeError):
    """Raised when received code/data fails its integrity check."""

    def __init__(self, what: str) -> None:
        super().__init__(f"attestation failed for {what}")
        self.what = what
