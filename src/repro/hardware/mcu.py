"""ATmega1281 microcontroller model.

The EVM cares about three things the MCU provides: a cycle budget (how long a
block of work takes), finite RAM/ROM (task stacks, code capsules and the
interpreter heap must fit), and CPU power states (energy accounting).  We
model exactly those.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import SEC


class MemoryExhausted(MemoryError):
    """Raised when a RAM/ROM allocation does not fit the remaining budget."""


@dataclass(frozen=True)
class McuSpec:
    """Datasheet constants for the microcontroller.

    Defaults are the FireFly's ATmega1281 running at 7.3728 MHz on 3 V.
    Currents are drawn from the ATmega1281 datasheet ballpark figures.
    """

    name: str = "ATmega1281"
    clock_hz: int = 7_372_800
    ram_bytes: int = 8 * 1024
    rom_bytes: int = 128 * 1024
    active_current_a: float = 6.0e-3
    idle_current_a: float = 2.0e-3
    sleep_current_a: float = 10.0e-6


@dataclass
class _Region:
    """One named allocation in RAM or ROM."""

    name: str
    size: int


class _MemoryBank:
    """Fixed-size allocator with named regions (no fragmentation model)."""

    def __init__(self, kind: str, capacity: int) -> None:
        self.kind = kind
        self.capacity = capacity
        self._regions: dict[str, _Region] = {}

    @property
    def used(self) -> int:
        return sum(r.size for r in self._regions.values())

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def allocate(self, name: str, size: int) -> None:
        if size < 0:
            raise ValueError(f"negative allocation {size}")
        if name in self._regions:
            raise ValueError(f"{self.kind} region {name!r} already allocated")
        if size > self.free:
            raise MemoryExhausted(
                f"{self.kind} exhausted: need {size} B for {name!r}, "
                f"only {self.free} B free of {self.capacity}"
            )
        self._regions[name] = _Region(name, size)

    def resize(self, name: str, size: int) -> None:
        if name not in self._regions:
            raise KeyError(f"no {self.kind} region {name!r}")
        delta = size - self._regions[name].size
        if delta > self.free:
            raise MemoryExhausted(
                f"{self.kind} exhausted resizing {name!r} to {size} B")
        self._regions[name].size = size

    def release(self, name: str) -> None:
        self._regions.pop(name, None)

    def regions(self) -> dict[str, int]:
        return {name: region.size for name, region in self._regions.items()}


class Mcu:
    """Microcontroller with cycle accounting and RAM/ROM budgets."""

    def __init__(self, spec: McuSpec | None = None) -> None:
        self.spec = spec or McuSpec()
        self.ram = _MemoryBank("RAM", self.spec.ram_bytes)
        self.rom = _MemoryBank("ROM", self.spec.rom_bytes)
        self.cycles_executed = 0

    def cycles_to_ticks(self, cycles: int) -> int:
        """Convert a cycle count to simulated microseconds (>= 1 if any work)."""
        if cycles <= 0:
            return 0
        ticks = (cycles * SEC) // self.spec.clock_hz
        return max(1, ticks)

    def ticks_to_cycles(self, ticks: int) -> int:
        """How many cycles fit in a tick window (floor)."""
        return (ticks * self.spec.clock_hz) // SEC

    def execute(self, cycles: int) -> int:
        """Account for executing ``cycles``; returns the tick duration."""
        if cycles < 0:
            raise ValueError(f"negative cycle count {cycles}")
        self.cycles_executed += cycles
        return self.cycles_to_ticks(cycles)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Mcu({self.spec.name}, ram {self.ram.used}/{self.ram.capacity}, "
                f"rom {self.rom.used}/{self.rom.capacity})")
