"""Coulomb-counting battery with optional solar assist.

Components report ``draw(current, duration)``; the battery integrates charge
and exposes remaining capacity plus a lifetime projection from the observed
average current.  The FireFly can also run from a solar cell under ambient
light, which we model as a constant recharge current clamp.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import SEC

_SECONDS_PER_HOUR = 3600.0
_HOURS_PER_YEAR = 24.0 * 365.25


@dataclass(frozen=True)
class BatterySpec:
    """Energy-store constants.  Default: two AA cells in series.

    ``capacity_coulombs`` = 2600 mAh * 3600 s/h (usable capacity).
    """

    capacity_coulombs: float = 2.6 * _SECONDS_PER_HOUR  # amp-seconds, 2600 mAh
    nominal_voltage: float = 3.0
    solar_current_a: float = 0.0  # recharge clamp while light is available


class BatteryDepleted(RuntimeError):
    """Raised when a draw is attempted on an empty battery."""


class Battery:
    """Integrates current draws over simulated time."""

    def __init__(self, engine, spec: BatterySpec | None = None,
                 raise_when_empty: bool = False) -> None:
        self.engine = engine
        self.spec = spec or BatterySpec()
        self.charge_drawn = 0.0  # coulombs consumed net of solar
        self.raise_when_empty = raise_when_empty
        self._start_time = engine.now

    def draw(self, current_a: float, duration_ticks: int) -> None:
        """Consume ``current_a`` amperes for ``duration_ticks`` of sim time."""
        if current_a < 0:
            raise ValueError(f"negative current {current_a}")
        if duration_ticks < 0:
            raise ValueError(f"negative duration {duration_ticks}")
        effective = max(0.0, current_a - self.spec.solar_current_a)
        self.charge_drawn += effective * (duration_ticks / SEC)
        if self.raise_when_empty and self.depleted:
            raise BatteryDepleted(
                f"battery depleted after {self.charge_drawn:.1f} C")

    def drain_fraction(self, fraction: float) -> None:
        """Instantly consume ``fraction`` of the *rated* capacity.

        Fault-injection hook (sudden load, cell damage, cold snap): the
        charge disappears without an associated current-over-time draw, so
        lifetime projections keep reflecting the observed duty cycle.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0,1], got {fraction}")
        self.charge_drawn = max(self.charge_drawn, min(
            self.spec.capacity_coulombs,
            self.charge_drawn + fraction * self.spec.capacity_coulombs))
        if self.raise_when_empty and self.depleted:
            raise BatteryDepleted(
                f"battery depleted after {self.charge_drawn:.1f} C")

    @property
    def remaining_coulombs(self) -> float:
        return max(0.0, self.spec.capacity_coulombs - self.charge_drawn)

    @property
    def remaining_fraction(self) -> float:
        if self.spec.capacity_coulombs == 0:
            return 0.0
        return self.remaining_coulombs / self.spec.capacity_coulombs

    @property
    def depleted(self) -> bool:
        return self.charge_drawn >= self.spec.capacity_coulombs

    @property
    def energy_consumed_joules(self) -> float:
        return self.charge_drawn * self.spec.nominal_voltage

    def average_current_a(self) -> float:
        """Mean current since construction (0 if no time has elapsed)."""
        elapsed_ticks = self.engine.now - self._start_time
        if elapsed_ticks <= 0:
            return 0.0
        return self.charge_drawn / (elapsed_ticks / SEC)

    def projected_lifetime_years(self) -> float:
        """Extrapolate full-capacity lifetime from the observed mean current.

        This is the metric behind the paper's "1.8 years at 5 % duty cycle"
        claim: capacity / average-current, converted to years.
        Returns ``inf`` when no current has been drawn.
        """
        avg = self.average_current_a()
        if avg <= 0.0:
            return float("inf")
        hours = (self.spec.capacity_coulombs / avg) / _SECONDS_PER_HOUR
        return hours / _HOURS_PER_YEAR

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Battery({self.remaining_fraction * 100:.1f}% of "
                f"{self.spec.capacity_coulombs:.0f} C)")
