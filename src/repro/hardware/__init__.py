"""FireFly platform model.

The paper's testbed is the FireFly sensor node: an Atmel ATmega1281
microcontroller (8 KB RAM, 128 KB ROM) with a Chipcon CC2420 IEEE 802.15.4
radio and an out-of-band AM receiver used for hardware time synchronization
(sub-150 us jitter).  We model the pieces the EVM stack actually consumes:

- :class:`~repro.hardware.mcu.Mcu` -- cycle/memory budgets and CPU power states
- :class:`~repro.hardware.radio.Radio` -- CC2420 timing and power states
- :class:`~repro.hardware.battery.Battery` -- coulomb-counting energy store
  (optionally solar-assisted) and lifetime projection
- :mod:`~repro.hardware.sensors` -- the FireFly expansion-board sensor suite
- :class:`~repro.hardware.timesync.AmTimeSync` -- the AM-broadcast global
  time reference with per-node reception jitter and clock drift
- :class:`~repro.hardware.node.FireFlyNode` -- the composed platform
"""

from repro.hardware.battery import Battery, BatterySpec
from repro.hardware.mcu import Mcu, McuSpec, MemoryExhausted
from repro.hardware.node import FireFlyNode
from repro.hardware.radio import Radio, RadioSpec, RadioState
from repro.hardware.sensors import (
    Accelerometer,
    AudioSensor,
    LightSensor,
    PirMotionSensor,
    Sensor,
    TemperatureSensor,
    VoltageSensor,
    standard_sensor_suite,
)
from repro.hardware.timesync import AmTimeSync, NodeClock

__all__ = [
    "Battery",
    "BatterySpec",
    "Mcu",
    "McuSpec",
    "MemoryExhausted",
    "FireFlyNode",
    "Radio",
    "RadioSpec",
    "RadioState",
    "Sensor",
    "LightSensor",
    "TemperatureSensor",
    "AudioSensor",
    "PirMotionSensor",
    "Accelerometer",
    "VoltageSensor",
    "standard_sensor_suite",
    "AmTimeSync",
    "NodeClock",
]
