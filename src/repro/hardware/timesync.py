"""Hardware time synchronization via an out-of-band AM broadcast.

FireFly's differentiator is a passive AM receiver: a region-wide carrier
pulse gives every node a common epoch at essentially zero radio-energy cost,
with sub-150 us reception jitter.  RT-Link's TDMA slots are aligned to these
pulses, which is what makes collision-free slots practical without idle
listening.

We model a global :class:`AmTimeSync` service that fires a carrier pulse at a
fixed period.  Each registered :class:`NodeClock` receives the pulse with a
per-node jitter draw (truncated Gaussian) and may miss pulses entirely with a
configurable probability (AM reception deep inside plants is imperfect).
Between pulses a node's local clock drifts at its crystal's ppm error.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.clock import SEC, US
from repro.sim.engine import Engine


@dataclass(frozen=True)
class TimeSyncSpec:
    """Calibration of the AM synchronization channel."""

    period_ticks: int = 1 * SEC
    jitter_std_ticks: float = 35.0 * US
    jitter_clamp_ticks: int = 145 * US  # receiver hardware bounds the pulse edge
    miss_probability: float = 0.0


class NodeClock:
    """A node's local clock: global time + sync offset + crystal drift."""

    def __init__(self, engine: Engine, drift_ppm: float = 0.0) -> None:
        self.engine = engine
        self.drift_ppm = drift_ppm
        self._offset_at_sync = 0
        self._last_sync_global = engine.now
        self.sync_count = 0
        self.missed_count = 0

    def local_time(self) -> int:
        """The node's belief of the current global time, in ticks."""
        elapsed = self.engine.now - self._last_sync_global
        drift = int(elapsed * self.drift_ppm / 1e6)
        return self.engine.now + self._offset_at_sync + drift

    def offset_error(self) -> int:
        """Signed ticks between local belief and true global time."""
        return self.local_time() - self.engine.now

    def apply_sync(self, jitter_ticks: int) -> None:
        """Receive a carrier pulse: collapse accumulated drift to the jitter."""
        self._offset_at_sync = jitter_ticks
        self._last_sync_global = self.engine.now
        self.sync_count += 1

    def note_missed_sync(self) -> None:
        self.missed_count += 1


class AmTimeSync:
    """Region-wide AM pulse generator driving all registered node clocks."""

    def __init__(self, engine: Engine, rng: random.Random,
                 spec: TimeSyncSpec | None = None, trace=None) -> None:
        self.engine = engine
        self.rng = rng
        self.spec = spec or TimeSyncSpec()
        self.trace = trace
        self._clocks: dict[str, NodeClock] = {}
        self.jitter_samples: list[int] = []
        self.pulse_count = 0
        self._running = False

    def register(self, node_id: str, clock: NodeClock) -> None:
        if node_id in self._clocks:
            raise ValueError(f"node {node_id!r} already registered for sync")
        self._clocks[node_id] = clock

    def start(self) -> None:
        """Begin emitting pulses every ``period_ticks`` from now."""
        if self._running:
            return
        self._running = True
        self.engine.post(self.spec.period_ticks, self._pulse, priority=-10)

    def stop(self) -> None:
        self._running = False

    def _draw_jitter(self) -> int:
        raw = self.rng.gauss(0.0, self.spec.jitter_std_ticks)
        clamp = self.spec.jitter_clamp_ticks
        return int(min(clamp, max(-clamp, raw)))

    def _pulse(self) -> None:
        if not self._running:
            return
        self.pulse_count += 1
        for node_id, clock in self._clocks.items():
            if (self.spec.miss_probability > 0.0
                    and self.rng.random() < self.spec.miss_probability):
                clock.note_missed_sync()
                continue
            jitter = self._draw_jitter()
            clock.apply_sync(jitter)
            self.jitter_samples.append(jitter)
            if self.trace is not None:
                self.trace.record(self.engine.now, "timesync.pulse", node_id,
                                  jitter=jitter)
        self.engine.post(self.spec.period_ticks, self._pulse, priority=-10)

    def max_abs_jitter(self) -> int:
        """Largest absolute reception jitter observed (the <150 us claim)."""
        if not self.jitter_samples:
            return 0
        return max(abs(j) for j in self.jitter_samples)
