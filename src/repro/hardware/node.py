"""The composed FireFly platform.

A :class:`FireFlyNode` bundles the MCU, radio, battery, sensor suite and
synchronized clock behind one object with a stable ``node_id``.  Higher
layers (MAC, RTOS, EVM) attach themselves to a node; the node itself stays a
passive hardware container.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.hardware.battery import Battery, BatterySpec
from repro.hardware.mcu import Mcu, McuSpec
from repro.hardware.radio import Radio, RadioSpec
from repro.hardware.sensors import Sensor, standard_sensor_suite
from repro.hardware.timesync import AmTimeSync, NodeClock
from repro.sim.engine import Engine


@dataclass(frozen=True)
class NodePosition:
    """Planar placement in meters, used by the radio propagation model."""

    x: float
    y: float

    def distance_to(self, other: "NodePosition") -> float:
        return ((self.x - other.x) ** 2 + (self.y - other.y) ** 2) ** 0.5


class FireFlyNode:
    """One FireFly mote: hardware only; protocol stacks attach on top."""

    def __init__(
        self,
        engine: Engine,
        node_id: str,
        position: NodePosition | None = None,
        mcu_spec: McuSpec | None = None,
        radio_spec: RadioSpec | None = None,
        battery_spec: BatterySpec | None = None,
        drift_ppm: float = 10.0,
        rng: random.Random | None = None,
        with_sensors: bool = True,
    ) -> None:
        self.engine = engine
        self.node_id = node_id
        self.position = position or NodePosition(0.0, 0.0)
        self.rng = rng or random.Random(0)
        self.mcu = Mcu(mcu_spec)
        self.battery = Battery(engine, battery_spec)
        self.radio = Radio(engine, self.battery, radio_spec)
        self.clock = NodeClock(engine, drift_ppm=drift_ppm)
        self.sensors: dict[str, Sensor] = (
            standard_sensor_suite(engine, self.battery, self.rng)
            if with_sensors else {})
        self.failed = False

    def join_timesync(self, sync: AmTimeSync) -> None:
        """Register this node's clock with the AM synchronization service."""
        sync.register(self.node_id, self.clock)

    def sensor(self, name: str) -> Sensor:
        if name not in self.sensors:
            raise KeyError(
                f"node {self.node_id!r} has no sensor {name!r}; "
                f"available: {sorted(self.sensors)}")
        return self.sensors[name]

    def fail(self) -> None:
        """Hard-fail the node (crash fault): radio off, flag set.

        Attached protocol stacks check :attr:`failed` before acting; the EVM
        failure-detection machinery reacts to the resulting silence.
        """
        self.failed = True
        from repro.hardware.radio import RadioState
        self.radio.set_state(RadioState.OFF)

    def recover(self) -> None:
        """Clear a crash fault (node rebooted)."""
        self.failed = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        status = "FAILED" if self.failed else "ok"
        return f"FireFlyNode({self.node_id!r}, {status})"
