"""FireFly expansion-board sensor suite.

The paper lists light, temperature, audio, passive-infrared motion, dual-axis
acceleration and voltage sensors.  Each sensor samples an *environment
function* (a callable of simulated time, so plant or scenario code can feed
values in), adds calibrated noise, and charges the battery for the sampling
window.  Sensor drivers can be enabled and disabled remotely at runtime --
one of the parametric-control EVM operations the paper demonstrates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.sim.clock import MS, US


@dataclass(frozen=True)
class SensorSpec:
    """Per-sensor calibration: sampling cost, noise and value range."""

    name: str
    sample_ticks: int
    sample_current_a: float
    noise_std: float
    min_value: float
    max_value: float


class SensorDisabled(RuntimeError):
    """Raised when sampling a sensor whose driver is disabled."""


class Sensor:
    """A single analog channel with a pluggable environment function."""

    def __init__(self, engine, battery, spec: SensorSpec,
                 rng: random.Random | None = None) -> None:
        self.engine = engine
        self.battery = battery
        self.spec = spec
        self.rng = rng or random.Random(0)
        self.enabled = True
        self.sample_count = 0
        self._environment: Callable[[int], float] = lambda _t: 0.0

    def attach_environment(self, fn: Callable[[int], float]) -> None:
        """Set the ground-truth signal; ``fn(time_ticks) -> value``."""
        self._environment = fn

    def enable(self) -> None:
        """Power the driver up (an EVM parametric-control operation)."""
        self.enabled = True

    def disable(self) -> None:
        """Power the driver down; samples raise until re-enabled."""
        self.enabled = False

    def sample(self) -> float:
        """Take one reading: truth + noise, clamped to the sensor range."""
        if not self.enabled:
            raise SensorDisabled(f"sensor {self.spec.name!r} is disabled")
        self.battery.draw(self.spec.sample_current_a, self.spec.sample_ticks)
        truth = self._environment(self.engine.now)
        noisy = truth + self.rng.gauss(0.0, self.spec.noise_std)
        self.sample_count += 1
        return min(self.spec.max_value, max(self.spec.min_value, noisy))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "on" if self.enabled else "off"
        return f"Sensor({self.spec.name!r}, {state})"


def LightSensor(engine, battery, rng=None) -> Sensor:
    """CdS photocell, reported in raw lux."""
    return Sensor(engine, battery, SensorSpec(
        name="light", sample_ticks=200 * US, sample_current_a=0.3e-3,
        noise_std=5.0, min_value=0.0, max_value=100_000.0), rng)


def TemperatureSensor(engine, battery, rng=None) -> Sensor:
    """Thermistor channel in degrees Celsius."""
    return Sensor(engine, battery, SensorSpec(
        name="temperature", sample_ticks=300 * US, sample_current_a=0.2e-3,
        noise_std=0.1, min_value=-40.0, max_value=125.0), rng)


def AudioSensor(engine, battery, rng=None) -> Sensor:
    """Microphone envelope level (dB SPL)."""
    return Sensor(engine, battery, SensorSpec(
        name="audio", sample_ticks=125 * US, sample_current_a=0.5e-3,
        noise_std=1.0, min_value=0.0, max_value=120.0), rng)


def PirMotionSensor(engine, battery, rng=None) -> Sensor:
    """Passive infrared motion level (0..1 detection confidence)."""
    return Sensor(engine, battery, SensorSpec(
        name="pir", sample_ticks=1 * MS, sample_current_a=0.17e-3,
        noise_std=0.01, min_value=0.0, max_value=1.0), rng)


def Accelerometer(engine, battery, rng=None) -> Sensor:
    """Dual-axis accelerometer magnitude in g (single fused channel)."""
    return Sensor(engine, battery, SensorSpec(
        name="accel", sample_ticks=150 * US, sample_current_a=0.6e-3,
        noise_std=0.005, min_value=-10.0, max_value=10.0), rng)


def VoltageSensor(engine, battery, rng=None) -> Sensor:
    """Supply-rail voltage monitor in volts."""
    return Sensor(engine, battery, SensorSpec(
        name="voltage", sample_ticks=100 * US, sample_current_a=0.1e-3,
        noise_std=0.002, min_value=0.0, max_value=4.0), rng)


_SUITE = (LightSensor, TemperatureSensor, AudioSensor, PirMotionSensor,
          Accelerometer, VoltageSensor)


def standard_sensor_suite(engine, battery, rng=None) -> dict[str, Sensor]:
    """The full FireFly expansion-board sensor set, keyed by name."""
    suite = {}
    for factory in _SUITE:
        sensor = factory(engine, battery, rng)
        suite[sensor.spec.name] = sensor
    return suite
