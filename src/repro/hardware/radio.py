"""Chipcon CC2420 radio model.

An IEEE 802.15.4 transceiver at 250 kbps.  The MAC layer drives the radio
through explicit state transitions; the radio reports per-state current to
the battery and computes frame airtimes from byte counts.

Datasheet-derived constants: TX 17.4 mA at 0 dBm, RX/listen 18.8 mA,
idle 0.426 mA, power-down 20 uA (we also fold in oscillator startup).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sim.clock import MS, SEC, US

PHY_HEADER_BYTES = 6
"""802.15.4 synchronization header + PHY header (4 preamble + 1 SFD + 1 len)."""


class RadioState(enum.Enum):
    OFF = "off"
    IDLE = "idle"
    RX = "rx"
    TX = "tx"


@dataclass(frozen=True)
class RadioSpec:
    """Datasheet constants for the transceiver (CC2420 defaults)."""

    name: str = "CC2420"
    bitrate_bps: int = 250_000
    tx_current_a: float = 17.4e-3
    rx_current_a: float = 18.8e-3
    idle_current_a: float = 0.426e-3
    off_current_a: float = 20.0e-6
    turnaround_ticks: int = 192 * US  # RX/TX turnaround (12 symbol periods)
    startup_ticks: int = 1 * MS      # oscillator + PLL startup from OFF
    max_payload_bytes: int = 116     # 127 MPDU - MAC overhead we reserve

    def airtime(self, payload_bytes: int) -> int:
        """Ticks on air for a frame with ``payload_bytes`` of MAC payload."""
        total_bytes = PHY_HEADER_BYTES + payload_bytes
        return (total_bytes * 8 * SEC) // self.bitrate_bps


_STATE_CURRENT = {
    RadioState.OFF: "off_current_a",
    RadioState.IDLE: "idle_current_a",
    RadioState.RX: "rx_current_a",
    RadioState.TX: "tx_current_a",
}


class Radio:
    """State-machine radio front-end with energy accounting.

    The radio does not itself understand packets -- the medium
    (:mod:`repro.net.medium`) and MAC protocols coordinate transmissions.
    This class tracks the power state timeline so the battery sees a faithful
    current profile, and exposes timing helpers.
    """

    def __init__(self, engine, battery, spec: RadioSpec | None = None) -> None:
        self.engine = engine
        self.battery = battery
        self.spec = spec or RadioSpec()
        self.state = RadioState.OFF
        self._state_since = engine.now
        self._state_time: dict[RadioState, int] = {s: 0 for s in RadioState}
        self.tx_count = 0
        self.rx_count = 0

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def set_state(self, new_state: RadioState) -> None:
        """Transition the radio, charging the battery for the elapsed state."""
        if new_state is self.state:
            return
        self._settle()
        if self.state is RadioState.OFF and new_state is not RadioState.OFF:
            # Account startup as idle-current time.
            self.battery.draw(self.spec.idle_current_a, self.spec.startup_ticks)
        self.state = new_state

    def _settle(self) -> None:
        """Charge the battery for time spent in the current state so far."""
        elapsed = self.engine.now - self._state_since
        if elapsed > 0:
            current = getattr(self.spec, _STATE_CURRENT[self.state])
            self.battery.draw(current, elapsed)
            self._state_time[self.state] += elapsed
        self._state_since = self.engine.now

    # ------------------------------------------------------------------
    # Introspection used by benches
    # ------------------------------------------------------------------
    def state_time(self, state: RadioState) -> int:
        """Cumulative ticks spent in ``state`` (settled to now)."""
        self._settle()
        return self._state_time[state]

    def duty_cycle(self) -> float:
        """Fraction of elapsed time with the radio in RX or TX."""
        self._settle()
        total = sum(self._state_time.values())
        if total == 0:
            return 0.0
        on = self._state_time[RadioState.RX] + self._state_time[RadioState.TX]
        return on / total

    def airtime(self, payload_bytes: int) -> int:
        return self.spec.airtime(payload_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Radio({self.spec.name}, {self.state.value})"
