"""The campaign coordinator: a TCP job broker with fault-tolerant leases.

One :class:`Coordinator` serves two kinds of peers over the framed
protocol in :mod:`repro.dist.protocol`:

- **clients** (a :class:`~repro.dist.runner.DistributedCampaignRunner`)
  submit batches of pre-pickled jobs and receive one ``result`` frame
  per job as it completes, then a ``done`` frame;
- **workers** (a :class:`~repro.dist.worker.WorkerAgent`) announce a
  slot count and are pushed ``job`` frames up to that many at a time,
  answering with ``result`` frames and periodic ``heartbeat`` frames.

Every in-flight job is a **lease**: granted to exactly one worker with
a hard execution deadline.  A worker that disconnects, misses enough
heartbeats, or sits on a lease past its deadline gets the job taken
back and requeued at the front of the queue; a job that has burned
through ``max_attempts`` grants is reported to its client as a failed
run instead of being retried forever.  Results are first-win: the
earliest result for a job settles it, and late duplicates from a
worker whose lease was already revoked are dropped.

Ordinary exceptions raised *by the job function* are not retried --
they are deterministic outcomes, reported to the client immediately --
only the loss of the worker executing a job triggers a requeue.  This
mirrors the local pool, where an exception propagates but a dead
machine would have killed the whole campaign; here it only costs a
re-run of the leased jobs on the survivors.

Since PR 8 the broker core is asyncio-native
(:class:`repro.dist.aiobroker.AsyncCoordinator`): one event loop on a
dedicated thread, a reader/writer task pair per peer, and the reaper +
status broadcaster as loop timers, which scales to thousands of
concurrent connections where thread-per-connection topped out at tens.
This class is the synchronous **facade** over that core -- same
constructor, same ``start/stop/serve_forever/status`` surface, same
``status()`` shape -- so the CLI, :class:`LocalCluster` and every
existing caller are unchanged.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from typing import Any

from repro.dist.aiobroker import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_WORKER_TIMEOUT,
    AsyncCoordinator,
    CoordinatorStats,
    JobRecord,
    Lease,
)
from repro.dist.protocol import (
    DEFAULT_PORT,
    MSG_HELLO,
    SUPPORTED_FEATURES,
    parse_address,
    send_message,
)

__all__ = ["Coordinator", "CoordinatorStats", "DEFAULT_PORT", "connect"]

# Re-exported for callers/tests that import these from here.
_REEXPORTED = (JobRecord, Lease, DEFAULT_LEASE_TIMEOUT,
               DEFAULT_WORKER_TIMEOUT, DEFAULT_MAX_ATTEMPTS)


class Coordinator:
    """Serve the leasing protocol on ``host:port`` (port 0 = ephemeral).

    ``lease_timeout`` is the hard per-job execution deadline (a hung
    worker loses the job even while its heartbeat thread stays chatty);
    ``worker_timeout`` is how long a silent worker survives between
    heartbeats before all its leases are revoked.

    The listener socket is bound here, synchronously, so ``.port`` is
    readable before :meth:`start`; the asyncio core adopts it when the
    loop thread comes up.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        # Deep backlog: the 1000-client connect ramp arrives faster
        # than the loop can accept when the host is busy.
        self._listener.listen(1024)
        self._listener.setblocking(False)
        self._stopped = threading.Event()
        self._core = AsyncCoordinator(
            self._listener, lease_timeout=lease_timeout,
            worker_timeout=worker_timeout, max_attempts=max_attempts,
            on_stop=self._stopped.set)
        self.host, self.port = self._core.host, self._core.port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def stats(self) -> CoordinatorStats:
        return self._core.stats

    @property
    def lease_timeout(self) -> float:
        return self._core.lease_timeout

    @property
    def worker_timeout(self) -> float:
        return self._core.worker_timeout

    @property
    def max_attempts(self) -> int:
        return self._core.max_attempts

    def start(self) -> "Coordinator":
        """Spawn the event-loop thread and wait until the broker is
        accepting connections; returns self."""
        if self._started:
            return self
        self._started = True
        serving = threading.Event()
        self._thread = threading.Thread(
            target=self._loop_main, args=(serving,),
            name="dist-aioloop", daemon=True)
        self._thread.start()
        serving.wait(timeout=10.0)
        return self

    def _loop_main(self, serving: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._core.run(on_serving=serving.set))
        finally:
            # Unblock a start() that raced a failed bring-up, and make
            # sure the stop event fires even on an abnormal loop exit.
            serving.set()
            self._stopped.set()
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                asyncio.set_event_loop(None)
                loop.close()

    def serve_forever(self) -> None:
        """Start and block until :meth:`stop` (the CLI entry point)."""
        self.start()
        self._stopped.wait()
        if self._thread is not None and \
                self._thread is not threading.current_thread():
            self._thread.join(timeout=5.0)

    def stop(self) -> None:
        """Shut the broker down: workers are told to exit, every socket
        is closed, pending jobs are abandoned (clients see the drop)."""
        self._stopped.set()
        loop = self._loop
        if loop is not None and loop.is_running():
            try:
                loop.call_soon_threadsafe(self._core.request_stop)
            except RuntimeError:
                pass  # loop tore down between the check and the call
            thread = self._thread
            if thread is not None and \
                    thread is not threading.current_thread():
                thread.join(timeout=10.0)
        else:
            self._core.request_stop()
            try:
                self._listener.close()
            except OSError:
                pass

    def __enter__(self) -> "Coordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        """JSON-able snapshot (the CLI status line, the status stream,
        the obs bridge and tests read it); see
        :meth:`AsyncCoordinator.build_status` for the shape."""
        loop = self._loop
        if loop is not None and loop.is_running():
            future = asyncio.run_coroutine_threadsafe(
                self._core.status_async(), loop)
            try:
                return future.result(timeout=10.0)
            except (asyncio.CancelledError, RuntimeError):
                pass  # loop stopped mid-flight: fall through
        # Loop not running (pre-start or post-stop): nothing mutates
        # the state concurrently, a direct build is safe.
        return self._core.build_status()

    # ------------------------------------------------------------------
    # Elastic fleet
    # ------------------------------------------------------------------
    def retire_workers(self, n: int = 1, timeout: float = 10.0) -> int:
        """Ask up to ``n`` workers to drain-then-exit (idle-first);
        returns how many were asked.  Safe from any thread -- this is
        the scale-down half of the autoscale driver contract."""
        loop = self._loop
        if loop is None or not loop.is_running():
            return 0
        future = asyncio.run_coroutine_threadsafe(
            self._core.retire_workers_async(n), loop)
        try:
            return future.result(timeout=timeout)
        except (asyncio.CancelledError, RuntimeError, TimeoutError):
            return 0

    def set_autoscaler(self, policy, driver, period: float = 0.5):
        """Attach an autoscaler: ``policy`` is an
        :class:`~repro.dist.autoscale.AutoscalePolicy` (or an already
        built :class:`~repro.dist.autoscale.Autoscaler`, in which case
        ``driver``/``period`` are ignored) evaluated every ``period``
        seconds on the broker's loop against the live status snapshot,
        acting through ``driver.scale_up(n)``/``driver.scale_down(n)``.
        Returns the autoscaler so callers can read its counters."""
        from repro.dist.autoscale import Autoscaler

        autoscaler = (policy if isinstance(policy, Autoscaler)
                      else Autoscaler(policy, driver, period=period))
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._core.set_autoscaler,
                                      autoscaler)
        else:
            # Pre-start: run() will start the evaluation timer.
            self._core.set_autoscaler(autoscaler)
        return autoscaler

    # Test/diagnostic hooks into the loop core.
    @property
    def core(self) -> AsyncCoordinator:
        return self._core


def connect(address: str, role: str, name: str = "",
            timeout: float = 10.0, retry_period: float = 0.1,
            slots: int | None = None,
            features: tuple[str, ...] | list[str] | None = None,
            ) -> socket.socket:
    """Dial a coordinator and complete the hello handshake, retrying
    until ``timeout`` so freshly-forked peers can race the listener up.
    Shared by the worker agent, the client runner and the CLI.

    ``features`` advertises optional protocol extensions (see
    ``SUPPORTED_FEATURES``); ``None`` advertises none, which every
    coordinator accepts -- that is the uncompressed-interop path.
    """
    host, port = parse_address(address)
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            break
        except OSError as exc:
            last_error = exc
            if time.monotonic() >= deadline:
                raise ConnectionError(
                    f"could not reach coordinator at {address}: "
                    f"{last_error}") from last_error
            time.sleep(retry_period)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sock.settimeout(None)
    hello: dict[str, Any] = {"type": MSG_HELLO, "role": role, "name": name}
    if slots is not None:
        hello["slots"] = slots
    if features:
        hello["features"] = [f for f in features if f in SUPPORTED_FEATURES]
    send_message(sock, hello)
    return sock
