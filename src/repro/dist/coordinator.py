"""The campaign coordinator: a TCP job broker with fault-tolerant leases.

One :class:`Coordinator` serves two kinds of peers over the framed
protocol in :mod:`repro.dist.protocol`:

- **clients** (a :class:`~repro.dist.runner.DistributedCampaignRunner`)
  submit batches of pre-pickled jobs and receive one ``result`` frame
  per job as it completes, then a ``done`` frame;
- **workers** (a :class:`~repro.dist.worker.WorkerAgent`) announce a
  slot count and are pushed ``job`` frames up to that many at a time,
  answering with ``result`` frames and periodic ``heartbeat`` frames.

Every in-flight job is a **lease**: granted to exactly one worker with
a hard execution deadline.  A worker that disconnects, misses enough
heartbeats, or sits on a lease past its deadline gets the job taken
back and requeued at the front of the queue; a job that has burned
through ``max_attempts`` grants is reported to its client as a failed
run instead of being retried forever.  Results are first-win: the
earliest result for a job settles it, and late duplicates from a
worker whose lease was already revoked are dropped.

Ordinary exceptions raised *by the job function* are not retried --
they are deterministic outcomes, reported to the client immediately --
only the loss of the worker executing a job triggers a requeue.  This
mirrors the local pool, where an exception propagates but a dead
machine would have killed the whole campaign; here it only costs a
re-run of the leased jobs on the survivors.

All coordinator state is guarded by one lock; socket writes happen
outside it (a slow peer must never stall the broker).  The class is
self-contained and thread-per-connection: no asyncio, no selectors,
just blocking reads, which keeps the failure surface small enough to
reason about.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.dist.protocol import (
    DEFAULT_PORT,
    ConnectionClosed,
    ProtocolError,
    parse_address,
    recv_message,
    send_message,
    unpack_blob_list,
)

__all__ = ["Coordinator", "CoordinatorStats", "DEFAULT_PORT", "connect"]

DEFAULT_LEASE_TIMEOUT = 300.0
DEFAULT_WORKER_TIMEOUT = 15.0
DEFAULT_MAX_ATTEMPTS = 3


@dataclass
class JobRecord:
    """One submitted job: an opaque pre-pickled payload plus lease
    bookkeeping.  ``attempts`` counts lease *grants*, so a job seen by
    ``max_attempts`` workers without an answer is declared failed.

    ``key`` is the broker-internal identity
    (``c<client>b<batch>:<job_id>``): two clients are free to pick
    colliding job ids, and one client's sequential batches reuse them,
    so every queue, lease and wire frame between coordinator and
    workers uses the namespaced key -- a straggler result for a
    *previous* batch's job can then never settle the same id in a
    later batch.  Only the frames back to the owning client carry its
    original ``job_id``."""

    key: str
    job_id: str
    payload: bytes
    client_id: int
    max_attempts: int
    attempts: int = 0
    # When the job entered the queue (monotonic); the gap to its first
    # lease grant is the queue-wait the status stream reports.
    submitted_at: float = 0.0
    # Workers that already lost/timed out this job: retries prefer
    # anyone else (falling back to them only when nobody else has a
    # free slot, so exclusion can never starve a job).
    excluded: set[int] = field(default_factory=set)


@dataclass
class Lease:
    job: JobRecord
    worker_id: int
    deadline: float
    # Which grant this lease represents; results echo it so a stale
    # frame from a previous attempt on the SAME worker cannot be
    # mistaken for the live one.
    attempt: int = 0


class _Peer:
    """Shared connection plumbing: a socket plus a write lock so result
    fan-in from many worker threads cannot interleave frames."""

    def __init__(self, peer_id: int, sock: socket.socket, name: str) -> None:
        self.id = peer_id
        self.sock = sock
        self.name = name
        self.alive = True
        self._send_lock = threading.Lock()

    def send(self, header: dict[str, Any],
             payload: bytes | None = None) -> bool:
        """Best-effort framed send; a dead socket just reports False
        (the reader thread owns the actual teardown)."""
        with self._send_lock:
            return self.send_unlocked(header, payload)

    def send_unlocked(self, header: dict[str, Any],
                      payload: bytes | None = None) -> bool:
        """The raw send, for callers already holding ``_send_lock`` to
        order multiple frames atomically."""
        try:
            send_message(self.sock, header, payload)
            return True
        except OSError:
            self.alive = False
            return False

    def close(self) -> None:
        self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class _Worker(_Peer):
    def __init__(self, peer_id: int, sock: socket.socket, name: str,
                 slots: int) -> None:
        super().__init__(peer_id, sock, name)
        self.slots = max(1, slots)
        self.inflight: set[str] = set()
        self.last_seen = time.monotonic()
        # Lease-latency health: grants and cumulative queue-wait of the
        # jobs granted to this worker.
        self.leases_granted = 0
        self.lease_wait_total = 0.0


class _Client(_Peer):
    def __init__(self, peer_id: int, sock: socket.socket, name: str) -> None:
        super().__init__(peer_id, sock, name)
        self.outstanding: set[str] = set()
        self.completed = 0
        self.failed = 0
        self.batches = 0
        # Status-stream subscription (set by a "subscribe" frame).  The
        # broadcaster thread pushes "status_update" frames at
        # ``subscribe_period`` while ``subscribed``.
        self.subscribed = False
        self.subscribe_period = 1.0
        self.last_push = 0.0
        # When the current batch's first jobs arrived: progress rate and
        # ETA are measured against this origin.
        self.batch_started = 0.0


@dataclass
class CoordinatorStats:
    """Counters the status endpoint and tests read."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    jobs_requeued: int = 0
    workers_dropped: int = 0
    results_ignored: int = 0
    # Trace-ring rows evicted inside completed runs (reported by the
    # workers per result frame): silent data loss made visible.
    trace_dropped: int = 0


class Coordinator:
    """Serve the leasing protocol on ``host:port`` (port 0 = ephemeral).

    ``lease_timeout`` is the hard per-job execution deadline (a hung
    worker loses the job even while its heartbeat thread stays chatty);
    ``worker_timeout`` is how long a silent worker survives between
    heartbeats before all its leases are revoked.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> None:
        self.lease_timeout = lease_timeout
        self.worker_timeout = worker_timeout
        self.max_attempts = max(1, max_attempts)
        self.stats = CoordinatorStats()
        self._lock = threading.Lock()
        self._pending: deque[JobRecord] = deque()
        self._jobs: dict[str, JobRecord] = {}
        self._leases: dict[str, Lease] = {}
        self._workers: dict[int, _Worker] = {}
        self._clients: dict[int, _Client] = {}
        self._peer_ids = itertools.count(1)
        self._threads: list[threading.Thread] = []
        self._stopped = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "Coordinator":
        """Spawn the accept and reaper threads; returns self."""
        if self._started:
            return self
        self._started = True
        for target, name in ((self._accept_loop, "dist-accept"),
                             (self._reaper_loop, "dist-reaper"),
                             (self._stream_loop, "dist-status-stream")):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def serve_forever(self) -> None:
        """Start and block until :meth:`stop` (the CLI entry point)."""
        self.start()
        self._stopped.wait()

    def stop(self) -> None:
        """Shut the broker down: workers are told to exit, every socket
        is closed, pending jobs are abandoned (clients see the drop)."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        with self._lock:
            peers = list(self._workers.values()) + list(self._clients.values())
        for peer in peers:
            if isinstance(peer, _Worker):
                peer.send({"type": "shutdown"})
            peer.close()
        try:
            self._listener.close()
        except OSError:
            pass

    def __enter__(self) -> "Coordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Accept / per-connection readers
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(target=self._serve_peer, args=(sock,),
                                      name="dist-peer", daemon=True)
            thread.start()

    def _serve_peer(self, sock: socket.socket) -> None:
        """Handshake then dispatch to the role-specific read loop.  A
        malformed hello (wrong types, bad frame) just drops the
        connection -- a bad peer must not kill the thread with a
        traceback or leak the accepted socket."""
        try:
            header, _payload = recv_message(sock)
            if header.get("type") != "hello":
                raise ProtocolError("expected hello")
            peer_id = next(self._peer_ids)
            name = str(header.get("name", f"peer-{peer_id}"))
            role = header.get("role")
            if role == "worker":
                slots = int(header.get("slots", 1))
            elif role != "client":
                raise ProtocolError(f"unknown role {role!r}")
        except (ConnectionClosed, ProtocolError, OSError, ValueError,
                TypeError):
            sock.close()
            return
        if role == "worker":
            worker = _Worker(peer_id, sock, name, slots)
            with self._lock:
                self._workers[peer_id] = worker
            worker.send({"type": "welcome", "worker_id": peer_id})
            self._dispatch()
            self._worker_loop(worker)
        else:
            client = _Client(peer_id, sock, name)
            with self._lock:
                self._clients[peer_id] = client
            client.send({"type": "welcome", "client_id": peer_id})
            self._client_loop(client)

    def _worker_loop(self, worker: _Worker) -> None:
        try:
            while not self._stopped.is_set():
                header, payload = recv_message(worker.sock)
                kind = header["type"]
                if kind == "heartbeat":
                    worker.last_seen = time.monotonic()
                elif kind == "result":
                    worker.last_seen = time.monotonic()
                    self._on_result(worker, str(header["job_id"]),
                                    bool(header["ok"]),
                                    header.get("error"), payload,
                                    retryable=bool(header.get("retryable")),
                                    attempt=int(header.get("attempt", 0)),
                                    trace_dropped=int(
                                        header.get("trace_dropped", 0)))
                elif kind == "goodbye":
                    break
        except (ConnectionClosed, ProtocolError, OSError,
                KeyError, ValueError, TypeError):
            pass  # malformed frame == broken peer: drop it
        finally:
            self._drop_worker(worker, "disconnected")

    def _client_loop(self, client: _Client) -> None:
        try:
            while not self._stopped.is_set():
                header, payload = recv_message(client.sock)
                kind = header["type"]
                if kind == "submit":
                    self._on_submit(client, header, payload)
                elif kind == "status":
                    client.send({"type": "status", "status": self.status()})
                elif kind == "subscribe":
                    try:
                        period = float(header.get("period", 1.0))
                    except (TypeError, ValueError):
                        period = 1.0
                    client.subscribe_period = max(0.1, period)
                    client.last_push = 0.0
                    client.subscribed = True
                    client.send({"type": "subscribed",
                                 "period": client.subscribe_period})
                elif kind == "unsubscribe":
                    client.subscribed = False
                elif kind == "shutdown":
                    # Stop first (so the requester observes a stopped
                    # broker the moment its ack/EOF arrives), then ack
                    # best-effort -- stop() may already have closed us.
                    self.stop()
                    client.send({"type": "stopping"})
                    break
                elif kind == "goodbye":
                    break
        except (ConnectionClosed, ProtocolError, OSError,
                KeyError, ValueError, TypeError):
            pass  # malformed frame == broken peer: drop it
        finally:
            self._drop_client(client)

    # ------------------------------------------------------------------
    # Leasing core (all under self._lock; sends deferred outside it)
    # ------------------------------------------------------------------
    def _on_submit(self, client: _Client, header: dict[str, Any],
                   payload: bytes) -> None:
        job_ids = [str(j) for j in header.get("job_ids", [])]
        # Length-prefixed split, NOT pickle: the broker never unpickles
        # client data -- only workers (which execute the jobs anyway)
        # unpickle the individual blobs.
        blobs = unpack_blob_list(payload)
        if len(blobs) != len(job_ids):
            client.send({"type": "error",
                         "error": "job_ids/payload length mismatch"})
            return
        max_attempts = int(header.get("max_attempts", self.max_attempts))
        now = time.monotonic()
        with self._lock:
            if not client.outstanding:
                # A fresh batch on a reused connection: the done-frame
                # counters describe one batch, not the connection's life.
                client.completed = client.failed = 0
                client.batch_started = now
            client.batches += 1
            prefix = f"c{client.id}b{client.batches}"
            for job_id, blob in zip(job_ids, blobs):
                record = JobRecord(key=f"{prefix}:{job_id}",
                                   job_id=job_id, payload=blob,
                                   client_id=client.id,
                                   max_attempts=max(1, max_attempts),
                                   submitted_at=now)
                self._jobs[record.key] = record
                self._pending.append(record)
                client.outstanding.add(record.key)
            self.stats.jobs_submitted += len(job_ids)
        # No "accepted" ack: a fast batch could complete (result + done
        # frames) before an ack sent here, leaving a stray frame that
        # would desync the client's next status/shutdown exchange.  The
        # result stream itself is the acknowledgement.
        self._dispatch()

    def _dispatch(self) -> None:
        """Grant pending jobs to workers with free slots (FIFO over the
        queue, least-loaded worker first, avoiding workers that
        already lost the job).  Sends happen outside the lock; a
        failed send drops the worker, which requeues."""
        while True:
            with self._lock:
                # Settled jobs leave stale entries in the deque (cheap
                # lazy cleanup instead of O(n) removes under the lock).
                while self._pending and \
                        self._pending[0].key not in self._jobs:
                    self._pending.popleft()
                if not self._pending:
                    return
                candidates = [w for w in self._workers.values()
                              if w.alive and len(w.inflight) < w.slots]
                if not candidates:
                    return
                job = self._pending[0]
                eligible = [w for w in candidates
                            if w.id not in job.excluded] or candidates
                worker = min(eligible,
                             key=lambda w: (len(w.inflight), w.id))
                self._pending.popleft()
                job.attempts += 1
                worker.inflight.add(job.key)
                now = time.monotonic()
                worker.leases_granted += 1
                worker.lease_wait_total += max(0.0, now - job.submitted_at)
                self._leases[job.key] = Lease(
                    job=job, worker_id=worker.id,
                    deadline=now + self.lease_timeout,
                    attempt=job.attempts)
            sent = worker.send({"type": "job", "job_id": job.key,
                                "attempt": job.attempts}, job.payload)
            if not sent:
                self._drop_worker(worker, "send failed")

    def _on_result(self, worker: _Worker, key: str, ok: bool,
                   error: str | None, payload: bytes,
                   retryable: bool = False, attempt: int = 0,
                   trace_dropped: int = 0) -> None:
        delivery: Callable[[], None] | None = None
        settled = False
        with self._lock:
            job = self._jobs.get(key)
            if job is None:
                # Stale: the job was settled earlier (first result won,
                # or its client went away).  Free the bookkeeping only.
                worker.inflight.discard(key)
                self.stats.results_ignored += 1
            elif not ok and retryable:
                # The worker is alive but *lost* the execution (its pool
                # child died): requeue within the attempt budget -- but
                # only if this worker still holds the lease *for this
                # attempt*; a revoked or re-granted lease means the job
                # is already someone else's (or a newer grant's)
                # problem, and revoking it here would burn the budget
                # under a live execution.
                lease = self._leases.get(key)
                if (lease is None or lease.worker_id != worker.id
                        or (attempt and lease.attempt != attempt)):
                    self.stats.results_ignored += 1
                else:
                    worker.inflight.discard(key)
                    delivery = self._requeue_locked(
                        job, f"execution lost: {error}",
                        exclude_worker=worker.id)
            else:
                # Success (or a deterministic job failure): first
                # result wins regardless of which attempt produced it.
                self._settle_locked(job)
                worker.inflight.discard(key)
                settled = True
                if ok and trace_dropped > 0:
                    self.stats.trace_dropped += trace_dropped
        if settled:
            self._deliver(job, ok, error, payload)
        elif delivery is not None:
            delivery()
        # Always redispatch: even a stale result freed a worker slot.
        self._dispatch()

    def _settle_locked(self, job: JobRecord) -> None:
        """Remove a job from every queue/lease (caller holds the lock)."""
        del self._jobs[job.key]
        lease = self._leases.pop(job.key, None)
        if lease is not None:
            holder = self._workers.get(lease.worker_id)
            if holder is not None:
                holder.inflight.discard(job.key)
        # A stale entry may remain in self._pending; _dispatch skips
        # entries whose key is no longer registered.

    def _deliver(self, job: JobRecord, ok: bool, error: str | None,
                 payload: bytes | None) -> None:
        """Forward one settled job to its client (+ ``done`` when that
        client's batch is drained).

        The outstanding-set update and the sends happen under the
        client's send lock: without it, two threads delivering the last
        two jobs could interleave so that the drained thread's ``done``
        frame overtakes the other thread's ``result`` frame, and the
        client (which treats ``done`` as "every result has been sent")
        would drop a completed job.  Lock order is send-lock outer,
        state-lock inner -- nothing in the broker sends while holding
        the state lock, so there is no inversion."""
        with self._lock:
            client = self._clients.get(job.client_id)
            if ok:
                self.stats.jobs_completed += 1
            else:
                self.stats.jobs_failed += 1
            if client is None:
                return
        with client._send_lock:
            with self._lock:
                client.outstanding.discard(job.key)
                if ok:
                    client.completed += 1
                else:
                    client.failed += 1
                drained = not client.outstanding
                completed, failed = client.completed, client.failed
            header: dict[str, Any] = {"type": "result",
                                      "job_id": job.job_id,
                                      "ok": ok, "attempts": job.attempts}
            if error is not None:
                header["error"] = error
            client.send_unlocked(header, payload)
            if drained:
                client.send_unlocked({"type": "done",
                                      "completed": completed,
                                      "failed": failed})

    def _requeue_locked(self, job: JobRecord, reason: str,
                        exclude_worker: int | None = None,
                        ) -> Callable[[], None] | None:
        """Take a lease back (caller holds the lock).  Returns a deferred
        failure delivery when the job is out of attempts.
        ``exclude_worker`` marks the worker that just lost the job, so
        the retry lands elsewhere whenever anyone else has capacity."""
        self._leases.pop(job.key, None)
        if job.attempts >= job.max_attempts:
            del self._jobs[job.key]
            message = (f"worker lost after {job.attempts} "
                       f"attempt(s): {reason}")
            return lambda: self._deliver(job, False, message, None)
        if exclude_worker is not None:
            job.excluded.add(exclude_worker)
        self.stats.jobs_requeued += 1
        self._pending.appendleft(job)
        return None

    def _drop_worker(self, worker: _Worker, reason: str) -> None:
        """Remove a worker and requeue everything it was leasing."""
        deliveries: list[Callable[[], None]] = []
        with self._lock:
            if self._workers.pop(worker.id, None) is None:
                return  # already dropped by the reaper
            self.stats.workers_dropped += 1
            for key in sorted(worker.inflight):
                lease = self._leases.get(key)
                if lease is None or lease.worker_id != worker.id:
                    continue
                delivery = self._requeue_locked(lease.job, reason)
                if delivery is not None:
                    deliveries.append(delivery)
            worker.inflight.clear()
        worker.close()
        for delivery in deliveries:
            delivery()
        self._dispatch()

    def _drop_client(self, client: _Client) -> None:
        """Forget a client: its unfinished jobs are cancelled (workers
        already executing them will report into the void)."""
        with self._lock:
            if self._clients.pop(client.id, None) is None:
                return
            for key in list(client.outstanding):
                job = self._jobs.get(key)
                if job is not None:
                    self._settle_locked(job)
        client.close()

    # ------------------------------------------------------------------
    # Reaper: heartbeat liveness + lease deadlines
    # ------------------------------------------------------------------
    def _reap_period(self) -> float:
        return min(1.0, max(0.05, min(self.worker_timeout,
                                      self.lease_timeout) / 4.0))

    def _reaper_loop(self) -> None:
        while not self._stopped.wait(self._reap_period()):
            now = time.monotonic()
            with self._lock:
                silent = [w for w in self._workers.values()
                          if now - w.last_seen > self.worker_timeout]
                expired = [lease for lease in self._leases.values()
                           if now > lease.deadline]
            for worker in silent:
                self._drop_worker(worker, "heartbeat timeout")
            deliveries: list[Callable[[], None]] = []
            with self._lock:
                for lease in expired:
                    current = self._leases.get(lease.job.key)
                    if current is not lease:
                        continue  # settled or already requeued
                    holder = self._workers.get(lease.worker_id)
                    if holder is not None:
                        holder.inflight.discard(lease.job.key)
                    delivery = self._requeue_locked(
                        lease.job, "lease deadline expired",
                        exclude_worker=lease.worker_id)
                    if delivery is not None:
                        deliveries.append(delivery)
            for delivery in deliveries:
                delivery()
            if silent or expired:
                self._dispatch()

    # ------------------------------------------------------------------
    # Status stream: push "status_update" frames to subscribed clients
    # ------------------------------------------------------------------
    def _stream_loop(self) -> None:
        """Broadcast the status snapshot to subscribers at their
        requested periods.  One snapshot is shared per tick (a dozen
        subscribers must not take the state lock a dozen times);
        sends happen outside the lock and a failed push just marks the
        peer unsubscribed -- its reader thread owns the teardown."""
        while not self._stopped.wait(0.25):
            now = time.monotonic()
            with self._lock:
                due = [c for c in self._clients.values()
                       if c.subscribed and c.alive
                       and now - c.last_push >= c.subscribe_period]
            if not due:
                continue
            snapshot = self.status()
            for client in due:
                client.last_push = now
                if not client.send({"type": "status_update",
                                    "status": snapshot}):
                    client.subscribed = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        """JSON-able snapshot (the CLI status line, the status stream,
        the obs bridge and tests read it).

        ``workers``/``clients``/``stats`` keep their original shapes
        (tests index into them); worker entries gain health fields and
        ``campaigns`` adds per-client batch progress with a completion
        rate and ETA measured from the batch's first submit.
        """
        now = time.monotonic()
        with self._lock:
            campaigns = []
            for c in sorted(self._clients.values(), key=lambda c: c.id):
                settled = c.completed + c.failed
                if not (c.outstanding or settled):
                    continue  # idle control connections are not campaigns
                elapsed = max(1e-9, now - c.batch_started)
                rate = settled / elapsed if c.batch_started else 0.0
                campaigns.append({
                    "client_id": c.id, "name": c.name,
                    "outstanding": len(c.outstanding),
                    "completed": c.completed, "failed": c.failed,
                    "batches": c.batches,
                    "rate_per_sec": rate,
                    "eta_sec": (len(c.outstanding) / rate
                                if rate > 0 and c.outstanding else None),
                })
            return {
                "address": self.address,
                "pending": len(self._pending),
                "leased": len(self._leases),
                "workers": [
                    {"id": w.id, "name": w.name, "slots": w.slots,
                     "inflight": len(w.inflight),
                     "last_seen_age_sec": max(0.0, now - w.last_seen),
                     "leases_granted": w.leases_granted,
                     "lease_wait_avg_sec": (
                         w.lease_wait_total / w.leases_granted
                         if w.leases_granted else 0.0)}
                    for w in sorted(self._workers.values(),
                                    key=lambda w: w.id)],
                "clients": len(self._clients),
                "subscribers": sum(1 for c in self._clients.values()
                                   if c.subscribed),
                "campaigns": campaigns,
                "stats": dict(self.stats.__dict__),
            }


def connect(address: str, role: str, name: str = "",
            timeout: float = 10.0, retry_period: float = 0.1,
            slots: int | None = None) -> socket.socket:
    """Dial a coordinator and complete the hello handshake, retrying
    until ``timeout`` so freshly-forked peers can race the listener up.
    Shared by the worker agent, the client runner and the CLI."""
    host, port = parse_address(address)
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            break
        except OSError as exc:
            last_error = exc
            if time.monotonic() >= deadline:
                raise ConnectionError(
                    f"could not reach coordinator at {address}: "
                    f"{last_error}") from last_error
            time.sleep(retry_period)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sock.settimeout(None)
    hello: dict[str, Any] = {"type": "hello", "role": role, "name": name}
    if slots is not None:
        hello["slots"] = slots
    send_message(sock, hello)
    return sock
