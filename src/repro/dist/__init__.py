"""Distributed campaign execution: coordinator/worker fan-out over TCP.

The scenario subsystem shards grids across *local* processes; this
package is the next scale step the ROADMAP names -- the same picklable
campaign jobs shipped over sockets to worker agents on any number of
hosts, under the same staged-commit :class:`~repro.scenarios.store
.ResultsStore` contract:

- :mod:`repro.dist.protocol` -- length-prefixed JSON/pickle framing;
- :mod:`repro.dist.coordinator` -- the :class:`Coordinator` job broker
  with heartbeat- and deadline-guarded leases and bounded retries;
- :mod:`repro.dist.worker` -- the thin :class:`WorkerAgent` that leases
  jobs into a local process pool and streams results back;
- :mod:`repro.dist.runner` -- :class:`DistributedCampaignRunner`, the
  drop-in for :class:`~repro.scenarios.runner.CampaignRunner`;
- :mod:`repro.dist.fairshare` -- the weighted deficit-round-robin
  arbiter behind multi-tenant grant rounds;
- :mod:`repro.dist.autoscale` -- :class:`AutoscalePolicy` /
  :class:`Autoscaler`, elastic fleet sizing over a pluggable driver;
- :mod:`repro.dist.cluster` -- :class:`LocalCluster`, the test harness
  (coordinator + N workers in-process or as subprocesses), plus
  :class:`SubprocessWorkerFleet`, the autoscale driver the CLI uses;
- :mod:`repro.dist.cli` -- the ``python -m repro.dist`` entry point
  (``coordinator`` / ``worker`` / ``status`` subcommands).
"""

from repro.dist.autoscale import Autoscaler, AutoscalePolicy
from repro.dist.cluster import LocalCluster, SubprocessWorkerFleet
from repro.dist.coordinator import Coordinator
from repro.dist.fairshare import FairScheduler
from repro.dist.runner import DistributedCampaignRunner, DistributedJobError
from repro.dist.worker import WorkerAgent

__all__ = [
    "Autoscaler",
    "AutoscalePolicy",
    "Coordinator",
    "DistributedCampaignRunner",
    "DistributedJobError",
    "FairScheduler",
    "LocalCluster",
    "SubprocessWorkerFleet",
    "WorkerAgent",
]
