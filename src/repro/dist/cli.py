"""``python -m repro.dist`` -- run a coordinator or a worker agent.

Quickstart (three terminals on one machine)::

    # terminal 1: the broker
    PYTHONPATH=src python -m repro.dist coordinator --port 7461

    # terminals 2+3: one agent each (2 local processes apiece)
    PYTHONPATH=src python -m repro.dist worker \\
        --connect 127.0.0.1:7461 --processes 2

then point any :class:`~repro.dist.runner.DistributedCampaignRunner`
(e.g. ``examples/distributed_campaign.py`` or ``python -m
repro.experiments.widegrid --dist 127.0.0.1:7461``) at the coordinator.
``status`` prints the broker's live queue/worker snapshot as JSON;
``status --follow`` subscribes to the coordinator's push stream and
prints one progress line per update (per-campaign completed/outstanding
counts, rate, ETA, worker health) until interrupted.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.dist.protocol import DEFAULT_PORT


def _cmd_coordinator(args: argparse.Namespace) -> int:
    from repro.dist.coordinator import Coordinator

    coordinator = Coordinator(host=args.host, port=args.port,
                              lease_timeout=args.lease_timeout,
                              worker_timeout=args.worker_timeout,
                              max_attempts=args.max_attempts)
    fleet = None
    if args.autoscale:
        from repro.dist.autoscale import AutoscalePolicy, parse_autoscale
        from repro.dist.cluster import SubprocessWorkerFleet

        lo, hi = parse_autoscale(args.autoscale)
        fleet = SubprocessWorkerFleet(
            coordinator, processes=args.autoscale_processes)
        coordinator.set_autoscaler(
            AutoscalePolicy(min_workers=lo, max_workers=hi), fleet,
            period=args.autoscale_interval)
    print(f"coordinator listening on {coordinator.address} "
          f"(lease {args.lease_timeout}s, worker {args.worker_timeout}s, "
          f"max attempts {args.max_attempts}"
          + (f", autoscale {args.autoscale}" if args.autoscale else "")
          + ")", flush=True)
    try:
        coordinator.serve_forever()
    except KeyboardInterrupt:
        coordinator.stop()
    finally:
        if fleet is not None:
            fleet.close()
    print("coordinator stopped", flush=True)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.dist.worker import WorkerAgent

    agent = WorkerAgent(args.connect, processes=args.processes,
                        slots=args.slots or None, name=args.name,
                        heartbeat_period=args.heartbeat,
                        connect_timeout=args.connect_timeout,
                        compress=not args.no_compress)
    print(f"worker {agent.name} -> {args.connect} "
          f"({args.processes} process(es), {agent.slots} slot(s))",
          flush=True)
    try:
        agent.run()  # returns on coordinator shutdown / loss
    except KeyboardInterrupt:
        agent.stop()
    print(f"worker {agent.name} exiting "
          f"({agent.jobs_done} done, {agent.jobs_failed} failed)",
          flush=True)
    return 0


def format_status_line(status: dict) -> str:
    """One human-readable progress line from a status snapshot (the
    ``--follow`` stream; also unit-tested directly)."""
    stats = status.get("stats", {})
    parts = [f"pending={status.get('pending', 0)}",
             f"leased={status.get('leased', 0)}",
             f"workers={len(status.get('workers', []))}",
             f"done={stats.get('jobs_completed', 0)}",
             f"failed={stats.get('jobs_failed', 0)}"]
    if stats.get("trace_dropped"):
        # Bounded Trace rings evicted rows inside completed runs:
        # trace-derived metrics may undercount.  Shown only when
        # non-zero so the healthy line stays short.
        parts.append(f"dropped={stats['trace_dropped']}")
    scale = status.get("autoscale")
    if scale is not None:
        # Only autoscaled brokers carry the block; the plain line (and
        # its pinned test expectations) stays unchanged without it.
        parts.append(f"fleet={status.get('fleet_size', 0)}"
                     f"[{scale.get('min')}:{scale.get('max')}]")
    for campaign in status.get("campaigns", []):
        total = (campaign.get("outstanding", 0)
                 + campaign.get("completed", 0) + campaign.get("failed", 0))
        settled = campaign.get("completed", 0) + campaign.get("failed", 0)
        eta = campaign.get("eta_sec")
        eta_text = f" eta={eta:.0f}s" if eta is not None else ""
        share = campaign.get("share") or 0.0
        share_text = f" share={share:.0%}" if share else ""
        parts.append(f"[{campaign.get('name')}: {settled}/{total} "
                     f"@{campaign.get('rate_per_sec', 0.0):.1f}/s"
                     f"{eta_text}{share_text}]")
    return " ".join(parts)


def _follow_status(args: argparse.Namespace) -> int:
    from repro.dist import coordinator as coordinator_mod
    from repro.dist.protocol import (ConnectionClosed, recv_message,
                                     send_message)

    sock = coordinator_mod.connect(args.connect, role="client",
                                   name="status-follow",
                                   timeout=args.connect_timeout)
    updates = 0
    try:
        recv_message(sock)  # welcome
        send_message(sock, {"type": "subscribe",
                            "period": args.interval})
        while True:
            header, _payload = recv_message(sock)
            kind = header.get("type")
            if kind != "status_update":
                continue  # the "subscribed" ack, stray frames
            status = header.get("status", {})
            if args.json:
                print(json.dumps(status, sort_keys=True), flush=True)
            else:
                print(format_status_line(status), flush=True)
            updates += 1
            if args.max_updates and updates >= args.max_updates:
                break
    except (ConnectionClosed, KeyboardInterrupt):
        pass  # coordinator went away / user stopped following
    finally:
        try:
            send_message(sock, {"type": "goodbye"})
        except OSError:
            pass
        sock.close()
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.dist.runner import DistributedCampaignRunner

    if args.follow:
        return _follow_status(args)
    with DistributedCampaignRunner(
            args.connect, connect_timeout=args.connect_timeout) as runner:
        print(json.dumps(runner.status(), indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="python -m repro.dist",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    coord = sub.add_parser("coordinator",
                           help="serve the job-leasing broker")
    coord.add_argument("--host", default="127.0.0.1")
    coord.add_argument("--port", type=int, default=DEFAULT_PORT)
    coord.add_argument("--lease-timeout", type=float, default=300.0,
                       help="hard per-job execution deadline (s)")
    coord.add_argument("--worker-timeout", type=float, default=15.0,
                       help="heartbeat silence before a worker is dropped")
    coord.add_argument("--max-attempts", type=int, default=3,
                       help="lease grants per job before it is failed")
    coord.add_argument("--autoscale", default="", metavar="MIN:MAX",
                       help="run an elastic subprocess worker fleet "
                            "sized MIN..MAX by queue depth and "
                            "lease-wait (workers drain before exiting)")
    coord.add_argument("--autoscale-processes", type=int, default=1,
                       help="process pool width of each autoscaled "
                            "worker (0 = inline threads)")
    coord.add_argument("--autoscale-interval", type=float, default=0.5,
                       help="seconds between autoscale policy "
                            "evaluations")
    coord.set_defaults(func=_cmd_coordinator)

    worker = sub.add_parser("worker", help="lease and execute jobs")
    worker.add_argument("--connect", required=True,
                        help="coordinator address, host:port")
    worker.add_argument("--processes", type=int, default=1,
                        help="local process pool width (0 = inline)")
    worker.add_argument("--slots", type=int, default=0,
                        help="concurrent leases (default: pool width)")
    worker.add_argument("--heartbeat", type=float, default=2.0)
    worker.add_argument("--connect-timeout", type=float, default=30.0,
                        help="how long to retry dialing the coordinator")
    worker.add_argument("--name", default="")
    worker.add_argument("--no-compress", action="store_true",
                        help="do not advertise zlib frame compression "
                             "(frames stay raw for packet-level debugging)")
    worker.set_defaults(func=_cmd_worker)

    status = sub.add_parser("status",
                            help="print the coordinator's snapshot")
    status.add_argument("--connect", required=True)
    status.add_argument("--connect-timeout", type=float, default=10.0)
    status.add_argument("--follow", action="store_true",
                        help="subscribe to the live status stream and "
                             "print one line per update")
    status.add_argument("--interval", type=float, default=1.0,
                        help="requested stream period in seconds")
    status.add_argument("--max-updates", type=int, default=0,
                        help="stop after N updates (0 = until ^C)")
    status.add_argument("--json", action="store_true",
                        help="emit raw JSON snapshots when following")
    status.set_defaults(func=_cmd_status)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
