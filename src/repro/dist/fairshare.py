"""Weighted deficit-round-robin arbitration over per-campaign queues.

The broker's original pending queue was one FIFO deque: a tenant that
submitted 10,000 jobs first owned every grant until its backlog
drained, and a late one-job campaign waited behind all of them.
:class:`FairScheduler` replaces it with one queue per campaign (one
client *batch*: the ``c<client>b<batch>`` prefix the broker already
namespaces job keys under) drained by the classic deficit-round-robin
discipline, weighted:

- every campaign queue carries a ``deficit`` counter (grant credit);
- a grant round picks the non-empty queue with the **largest deficit**
  (ties break toward the earlier-created queue, which is what keeps a
  single-tenant broker exactly FIFO) and charges one credit per job
  granted;
- when no queue can afford a grant, every backlogged queue is
  replenished in proportion to its declared ``weight`` -- in one
  arithmetic step, not a loop, so fractional weights cost O(queues);
- a queue that empties (or whose jobs were settled underneath it --
  the broker settles jobs without telling the scheduler) is deleted
  and **forfeits its credit**: deficits only accumulate while
  backlogged, the standard DRR rule that bounds unfairness.

The bound this buys (and the hypothesis property in
``tests/dist/test_fairshare.py`` pins): deficits stay within
``0 <= deficit < 1 + weight``, so over any interval in which a set of
campaigns stays backlogged, campaign *i*'s grant count differs from
its weighted ideal share by at most ``1 + weight_i`` -- no tenant
starves and no tenant can hoard beyond its weight.

The scheduler is deliberately broker-agnostic (plain keys, weights and
opaque job objects; staleness is delegated to an ``is_live``
predicate), so the fairness property can be tested exhaustively
without sockets or threads.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from typing import Any, Callable, Iterator

__all__ = ["CampaignQueue", "FairScheduler", "validate_weight"]


def validate_weight(weight: Any) -> float:
    """Parse a tenant-declared scheduling weight, raising ``ValueError``
    for anything that is not a finite number > 0 (a zero weight would
    never be replenished -- a starved tenant by construction -- so it
    is rejected at the submission edge rather than silently clamped)."""
    try:
        value = float(weight)
    except (TypeError, ValueError):
        raise ValueError(f"weight {weight!r} is not a number") from None
    if not math.isfinite(value) or value <= 0.0:
        raise ValueError(f"weight {value!r} must be a finite number > 0")
    return value


class CampaignQueue:
    """One tenant's backlog plus its DRR credit state."""

    __slots__ = ("campaign", "weight", "deficit", "seq", "jobs")

    def __init__(self, campaign: str, weight: float, seq: int) -> None:
        self.campaign = campaign
        self.weight = weight
        self.deficit = 0.0
        # Creation order: the tie-break that keeps equal-deficit grants
        # (and therefore the single-tenant case) FIFO.
        self.seq = seq
        self.jobs: deque[Any] = deque()


class FairScheduler:
    """Per-campaign queues drained largest-deficit-first.

    ``is_live(job) -> bool`` lets the owner settle jobs out-of-band
    (first result wins, client gone): stale queue fronts are pruned
    lazily during :meth:`peek`, the same trick the old FIFO deque
    played with ``key not in self._jobs``.
    """

    def __init__(self, is_live: Callable[[Any], bool] | None = None,
                 ) -> None:
        self._queues: dict[str, CampaignQueue] = {}
        self._is_live = is_live
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    def enqueue(self, campaign: str, weight: float, job: Any,
                front: bool = False) -> None:
        """Queue one job under ``campaign``.  ``front=True`` is the
        requeue path: a crashed lease goes back to the head of **its
        own** campaign's queue, never into another tenant's lane.  A
        re-declared weight updates the queue (last submit wins)."""
        queue = self._queues.get(campaign)
        if queue is None:
            queue = CampaignQueue(campaign, weight, next(self._seq))
            self._queues[campaign] = queue
        else:
            queue.weight = weight
        if front:
            queue.jobs.appendleft(job)
        else:
            queue.jobs.append(job)

    def _prune(self) -> list[CampaignQueue]:
        """Drop settled jobs off every queue front and delete emptied
        queues (forfeiting their credit); returns the backlogged set."""
        is_live = self._is_live
        active: list[CampaignQueue] = []
        for campaign in list(self._queues):
            queue = self._queues[campaign]
            if is_live is not None:
                jobs = queue.jobs
                while jobs and not is_live(jobs[0]):
                    jobs.popleft()
            if queue.jobs:
                active.append(queue)
            else:
                del self._queues[campaign]
        return active

    def peek(self) -> tuple[CampaignQueue, Any] | None:
        """The next ``(queue, job)`` a grant round should serve, or
        ``None`` when nothing is pending.  Replenishes deficits (by
        weight, in one closed-form step) whenever no backlogged queue
        can afford a grant; the pick itself is not charged until
        :meth:`commit`, so a caller that finds no capacity simply walks
        away with the state unchanged."""
        queues = self._queues
        if len(queues) == 1:
            # Solo tenant -- the broker's steady state.  Arbitration is
            # vacuous with one lane, so skip the DRR bookkeeping and
            # keep the grant path as cheap as the FIFO it replaced
            # (credit would be forfeited when the queue empties anyway;
            # :meth:`commit` skips the charge symmetrically).
            (queue,) = queues.values()
            jobs = queue.jobs
            is_live = self._is_live
            if is_live is not None:
                while jobs and not is_live(jobs[0]):
                    jobs.popleft()
            if not jobs:
                queues.clear()
                return None
            return queue, jobs[0]
        active = self._prune()
        if not active:
            return None
        best = max(active, key=lambda q: (q.deficit, -q.seq))
        if best.deficit < 1.0:
            # Nobody can afford a grant: top everyone up by k rounds of
            # their weight, with k the smallest integer that lifts at
            # least one queue to a full credit.  (Closed form instead
            # of looping: a 1e-6-weight tenant alone must not cost a
            # million iterations.)
            k = min(math.ceil((1.0 - q.deficit) / q.weight)
                    for q in active)
            for queue in active:
                queue.deficit += k * queue.weight
            best = max(active, key=lambda q: (q.deficit, -q.seq))
        return best, best.jobs[0]

    def commit(self, queue: CampaignQueue) -> Any:
        """Take the job :meth:`peek` offered and charge one credit
        (uncontended grants are free -- see the solo path in
        :meth:`peek` -- which keeps ``0 <= deficit < 1 + weight``:
        only a replenished pick is ever charged)."""
        job = queue.jobs.popleft()
        if len(self._queues) > 1:
            queue.deficit -= 1.0
        if not queue.jobs:
            del self._queues[queue.campaign]
        return job

    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Live queued jobs (prunes stale entries as a side effect)."""
        return sum(len(q.jobs) for q in self._prune())

    def backlog(self) -> dict[str, int]:
        """Live queue depth per campaign key."""
        return {q.campaign: len(q.jobs) for q in self._prune()}

    def __len__(self) -> int:
        return self.pending()

    def __iter__(self) -> Iterator[CampaignQueue]:
        return iter(list(self._queues.values()))
