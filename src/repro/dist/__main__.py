import sys

from repro.dist.cli import main

sys.exit(main())
