"""In-process / subprocess cluster harness for deterministic tests.

``LocalCluster`` spins up one :class:`~repro.dist.coordinator.Coordinator`
on an ephemeral localhost port plus ``n_workers`` worker agents, and
hands out :class:`~repro.dist.runner.DistributedCampaignRunner` clients
bound to it.  Two worker modes:

- ``mode="thread"`` (default): each :class:`WorkerAgent` runs on a
  daemon thread *inside this process* with an inline (thread) executor
  -- no fork, no spawn, fully deterministic and fast, which is what the
  conformance and parity tests want;
- ``mode="subprocess"``: each worker is a real ``python -m repro.dist
  worker`` child process (with ``src`` prepended to ``PYTHONPATH``), so
  tests can ``kill_worker()`` with a real SIGKILL and exercise the
  requeue path exactly the way a crashed remote host would.

The cluster is a context manager; exit stops the workers, then the
coordinator.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from typing import Any

from repro.dist.coordinator import Coordinator
from repro.dist.runner import DistributedCampaignRunner
from repro.dist.worker import WorkerAgent


def sleepy_echo(arg: dict) -> Any:
    """Demo/test job: sleep ``arg["sleep_sec"]`` then return
    ``arg["value"]``.  Module-level so subprocess workers can import it
    by reference; the sleep gives kill-mid-lease tests a window in
    which the job is reliably in flight."""
    import time as _time

    _time.sleep(float(arg.get("sleep_sec", 0.0)))
    return arg.get("value")


class LocalCluster:
    """Coordinator + N workers on localhost, wired for tests.

    ``processes`` is forwarded to each worker: 0 (default in thread
    mode) executes jobs inline on worker threads; >= 1 gives each
    worker its own process pool.  ``slots=None`` (default) matches
    each worker's concurrent leases to its executor width, the same
    rule ``WorkerAgent`` itself applies.  Lease/heartbeat knobs
    default to the coordinator's production values; tests shrink them
    to exercise the reaper quickly.
    """

    def __init__(self, n_workers: int = 2, mode: str = "thread",
                 processes: int | None = None, slots: int | None = None,
                 lease_timeout: float | None = None,
                 worker_timeout: float | None = None,
                 heartbeat_period: float = 0.2,
                 max_attempts: int | None = None,
                 compress: bool = True) -> None:
        if mode not in ("thread", "subprocess"):
            raise ValueError(f"unknown cluster mode {mode!r}")
        self.mode = mode
        self.n_workers = n_workers
        self.processes = processes if processes is not None else \
            (0 if mode == "thread" else 1)
        self.slots = slots
        self.heartbeat_period = heartbeat_period
        # Forwarded to every worker and runner: False pins the whole
        # cluster to raw frames (the interop/debug configuration).
        self.compress = compress
        kwargs: dict[str, Any] = {}
        if lease_timeout is not None:
            kwargs["lease_timeout"] = lease_timeout
        if worker_timeout is not None:
            kwargs["worker_timeout"] = worker_timeout
        if max_attempts is not None:
            kwargs["max_attempts"] = max_attempts
        self.coordinator = Coordinator(host="127.0.0.1", port=0, **kwargs)
        self.coordinator.start()
        self.workers: list[WorkerAgent | subprocess.Popen] = []
        self._runners: list[DistributedCampaignRunner] = []
        for i in range(n_workers):
            self.workers.append(self._spawn_worker(i))

    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        return self.coordinator.address

    def _spawn_worker(self, index: int):
        name = f"local-{index}"
        if self.mode == "thread":
            agent = WorkerAgent(self.address, processes=self.processes,
                                slots=self.slots, name=name,
                                heartbeat_period=self.heartbeat_period,
                                compress=self.compress)
            return agent.start()
        env = dict(os.environ)
        src = str(self._src_root())
        env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                                   if env.get("PYTHONPATH") else "")
        # Each worker leads its own process group (start_new_session),
        # so killing "the worker" takes its forked pool children with
        # it -- a bare SIGKILL on the agent alone would orphan them.
        argv = [sys.executable, "-m", "repro.dist", "worker",
                "--connect", self.address,
                "--processes", str(self.processes),
                "--slots", str(self.slots or 0),  # 0 = executor width
                "--heartbeat", str(self.heartbeat_period),
                "--name", name]
        if not self.compress:
            argv.append("--no-compress")
        return subprocess.Popen(
            argv,
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            start_new_session=True)

    @staticmethod
    def _signal_group(proc: subprocess.Popen, sig: int) -> None:
        """Signal a subprocess worker's whole process group (falling
        back to the process alone if the group is already gone)."""
        try:
            os.killpg(proc.pid, sig)
        except OSError:
            try:
                proc.send_signal(sig)
            except OSError:
                pass

    @staticmethod
    def _src_root():
        from pathlib import Path

        import repro

        # ``repro`` is a namespace package: locate src/ via __path__.
        return Path(list(repro.__path__)[0]).resolve().parent

    # ------------------------------------------------------------------
    def runner(self, results_dir: str | None = None,
               max_attempts: int | None = None,
               ) -> DistributedCampaignRunner:
        """A client runner bound to this cluster (closed with it)."""
        runner = DistributedCampaignRunner(
            self.address, results_dir=results_dir,
            max_attempts=max_attempts, compress=self.compress)
        self._runners.append(runner)
        return runner

    def wait_for_workers(self, n: int | None = None,
                         timeout: float = 10.0) -> None:
        """Block until ``n`` (default: all spawned) workers are
        registered with the coordinator -- subprocess workers race
        their own startup."""
        want = self.n_workers if n is None else n
        deadline = time.monotonic() + timeout
        while len(self.coordinator.status()["workers"]) < want:
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"only {len(self.coordinator.status()['workers'])} of "
                    f"{want} workers registered after {timeout}s")
            time.sleep(0.02)

    def kill_worker(self, index: int = 0) -> None:
        """Abruptly kill one worker mid-whatever-it-was-doing: SIGKILL
        for subprocess workers, a no-goodbye socket drop for thread
        workers.  The coordinator sees a disconnect and requeues the
        worker's leases."""
        victim = self.workers[index]
        if isinstance(victim, WorkerAgent):
            victim.kill()
        else:
            # Kill the whole group: a crashed host takes its pool
            # children down too (and orphans would otherwise linger).
            self._signal_group(victim, signal.SIGKILL)
            victim.wait(timeout=10)

    def close(self) -> None:
        for runner in self._runners:
            runner.close()
        self._runners.clear()
        for worker in self.workers:
            if isinstance(worker, WorkerAgent):
                worker.stop()
            elif worker.poll() is None:
                self._signal_group(worker, signal.SIGTERM)
                try:
                    worker.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    self._signal_group(worker, signal.SIGKILL)
                    worker.wait(timeout=5)
        self.workers.clear()
        self.coordinator.stop()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
