"""In-process / subprocess cluster harness for deterministic tests.

``LocalCluster`` spins up one :class:`~repro.dist.coordinator.Coordinator`
on an ephemeral localhost port plus ``n_workers`` worker agents, and
hands out :class:`~repro.dist.runner.DistributedCampaignRunner` clients
bound to it.  Two worker modes:

- ``mode="thread"`` (default): each :class:`WorkerAgent` runs on a
  daemon thread *inside this process* with an inline (thread) executor
  -- no fork, no spawn, fully deterministic and fast, which is what the
  conformance and parity tests want;
- ``mode="subprocess"``: each worker is a real ``python -m repro.dist
  worker`` child process (with ``src`` prepended to ``PYTHONPATH``), so
  tests can ``kill_worker()`` with a real SIGKILL and exercise the
  requeue path exactly the way a crashed remote host would.

The cluster is a context manager; exit stops the workers, then the
coordinator.

Both cluster flavours are **elastic**: ``spawn_workers(n)`` /
``retire_workers(n)`` grow and drain the fleet at runtime, and the
``scale_up``/``scale_down`` aliases make a cluster directly usable as
an :class:`~repro.dist.autoscale.Autoscaler` driver (pass
``autoscale=(min, max)`` or a full policy to wire that up at
construction).  :class:`SubprocessWorkerFleet` is the same driver
contract for a standalone coordinator (the ``python -m repro.dist
coordinator --autoscale min:max`` path): it spawns real ``python -m
repro.dist worker`` children and retires them through the broker.
"""

from __future__ import annotations

import itertools
import os
import signal
import subprocess
import sys
import threading
import time
from typing import Any

from repro.dist.coordinator import Coordinator
from repro.dist.runner import DistributedCampaignRunner
from repro.dist.worker import WorkerAgent


def _src_root():
    from pathlib import Path

    import repro

    # ``repro`` is a namespace package: locate src/ via __path__.
    return Path(list(repro.__path__)[0]).resolve().parent


def spawn_worker_process(address: str, processes: int = 1,
                         slots: int | None = None,
                         heartbeat_period: float = 2.0,
                         name: str = "",
                         compress: bool = True) -> subprocess.Popen:
    """Fork one ``python -m repro.dist worker`` child dialled at
    ``address`` (with ``src`` prepended to its ``PYTHONPATH``).  Each
    worker leads its own process group (``start_new_session``), so
    killing "the worker" takes its forked pool children with it -- a
    bare SIGKILL on the agent alone would orphan them.  Shared by
    :class:`LocalCluster` and :class:`SubprocessWorkerFleet`."""
    env = dict(os.environ)
    src = str(_src_root())
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    argv = [sys.executable, "-m", "repro.dist", "worker",
            "--connect", address,
            "--processes", str(processes),
            "--slots", str(slots or 0),  # 0 = executor width
            "--heartbeat", str(heartbeat_period)]
    if name:
        argv += ["--name", name]
    if not compress:
        argv.append("--no-compress")
    return subprocess.Popen(
        argv,
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        start_new_session=True)


def sleepy_echo(arg: dict) -> Any:
    """Demo/test job: sleep ``arg["sleep_sec"]`` then return
    ``arg["value"]``.  Module-level so subprocess workers can import it
    by reference; the sleep gives kill-mid-lease tests a window in
    which the job is reliably in flight."""
    import time as _time

    _time.sleep(float(arg.get("sleep_sec", 0.0)))
    return arg.get("value")


class LocalCluster:
    """Coordinator + N workers on localhost, wired for tests.

    ``processes`` is forwarded to each worker: 0 (default in thread
    mode) executes jobs inline on worker threads; >= 1 gives each
    worker its own process pool.  ``slots=None`` (default) matches
    each worker's concurrent leases to its executor width, the same
    rule ``WorkerAgent`` itself applies.  Lease/heartbeat knobs
    default to the coordinator's production values; tests shrink them
    to exercise the reaper quickly.
    """

    def __init__(self, n_workers: int = 2, mode: str = "thread",
                 processes: int | None = None, slots: int | None = None,
                 lease_timeout: float | None = None,
                 worker_timeout: float | None = None,
                 heartbeat_period: float = 0.2,
                 max_attempts: int | None = None,
                 compress: bool = True,
                 autoscale: Any = None,
                 autoscale_period: float = 0.25) -> None:
        if mode not in ("thread", "subprocess"):
            raise ValueError(f"unknown cluster mode {mode!r}")
        self.mode = mode
        self.n_workers = n_workers
        self.processes = processes if processes is not None else \
            (0 if mode == "thread" else 1)
        self.slots = slots
        self.heartbeat_period = heartbeat_period
        # Forwarded to every worker and runner: False pins the whole
        # cluster to raw frames (the interop/debug configuration).
        self.compress = compress
        kwargs: dict[str, Any] = {}
        if lease_timeout is not None:
            kwargs["lease_timeout"] = lease_timeout
        if worker_timeout is not None:
            kwargs["worker_timeout"] = worker_timeout
        if max_attempts is not None:
            kwargs["max_attempts"] = max_attempts
        self.coordinator = Coordinator(host="127.0.0.1", port=0, **kwargs)
        self.coordinator.start()
        self.workers: list[WorkerAgent | subprocess.Popen] = []
        self._runners: list[DistributedCampaignRunner] = []
        self._worker_seq = itertools.count()
        # spawn/retire may be driven from the autoscaler's executor
        # thread while a test thread reads/kills workers.
        self._workers_lock = threading.Lock()
        for _ in range(n_workers):
            self._append_worker()
        # ``autoscale=(min, max)`` (or a full AutoscalePolicy) wires
        # this cluster up as its own scale driver.
        self.autoscaler = None
        if autoscale is not None:
            from repro.dist.autoscale import AutoscalePolicy

            policy = (autoscale if isinstance(autoscale, AutoscalePolicy)
                      else AutoscalePolicy(min_workers=autoscale[0],
                                           max_workers=autoscale[1]))
            self.autoscaler = self.coordinator.set_autoscaler(
                policy, self, period=autoscale_period)

    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        return self.coordinator.address

    def _spawn_worker(self, index: int):
        name = f"local-{index}"
        if self.mode == "thread":
            agent = WorkerAgent(self.address, processes=self.processes,
                                slots=self.slots, name=name,
                                heartbeat_period=self.heartbeat_period,
                                compress=self.compress)
            return agent.start()
        return spawn_worker_process(
            self.address, processes=self.processes, slots=self.slots,
            heartbeat_period=self.heartbeat_period, name=name,
            compress=self.compress)

    def _append_worker(self) -> None:
        worker = self._spawn_worker(next(self._worker_seq))
        with self._workers_lock:
            self.workers.append(worker)

    # ------------------------------------------------------------------
    # Elastic fleet (the autoscale driver contract)
    # ------------------------------------------------------------------
    def spawn_workers(self, n: int) -> None:
        """Grow the fleet by ``n`` fresh workers (they dial in and
        register asynchronously, like any other worker)."""
        for _ in range(max(0, n)):
            self._append_worker()
        self.n_workers = len(self.workers)

    def retire_workers(self, n: int) -> int:
        """Drain-then-exit ``n`` workers via the coordinator (idle
        ones first).  The retired agents/processes exit on their own
        once drained; ``close()`` reaps whatever is left."""
        return self.coordinator.retire_workers(n)

    # Driver aliases so a cluster can be handed straight to an
    # Autoscaler (or to ``Coordinator.set_autoscaler``).
    def scale_up(self, n: int) -> None:
        self.spawn_workers(n)

    def scale_down(self, n: int) -> None:
        self.retire_workers(n)

    @staticmethod
    def _signal_group(proc: subprocess.Popen, sig: int) -> None:
        """Signal a subprocess worker's whole process group (falling
        back to the process alone if the group is already gone)."""
        try:
            os.killpg(proc.pid, sig)
        except OSError:
            try:
                proc.send_signal(sig)
            except OSError:
                pass

    # ------------------------------------------------------------------
    def runner(self, results_dir: str | None = None,
               max_attempts: int | None = None,
               weight: float = 1.0, name: str = "",
               warehouse: Any = None, tenant: str | None = None,
               ) -> DistributedCampaignRunner:
        """A client runner bound to this cluster (closed with it);
        ``weight`` declares its fair-share scheduling weight and
        ``warehouse=``/``tenant=`` opt into post-commit warehouse
        ingestion (see :class:`DistributedCampaignRunner`)."""
        runner = DistributedCampaignRunner(
            self.address, results_dir=results_dir,
            max_attempts=max_attempts, compress=self.compress,
            weight=weight, name=name, warehouse=warehouse, tenant=tenant)
        self._runners.append(runner)
        return runner

    def wait_for_workers(self, n: int | None = None,
                         timeout: float = 10.0) -> None:
        """Block until ``n`` (default: all spawned) workers are
        registered with the coordinator -- subprocess workers race
        their own startup."""
        want = self.n_workers if n is None else n
        deadline = time.monotonic() + timeout
        while len(self.coordinator.status()["workers"]) < want:
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"only {len(self.coordinator.status()['workers'])} of "
                    f"{want} workers registered after {timeout}s")
            time.sleep(0.02)

    def kill_worker(self, index: int = 0) -> None:
        """Abruptly kill one worker mid-whatever-it-was-doing: SIGKILL
        for subprocess workers, a no-goodbye socket drop for thread
        workers.  The coordinator sees a disconnect and requeues the
        worker's leases."""
        victim = self.workers[index]
        if isinstance(victim, WorkerAgent):
            victim.kill()
        else:
            # Kill the whole group: a crashed host takes its pool
            # children down too (and orphans would otherwise linger).
            self._signal_group(victim, signal.SIGKILL)
            victim.wait(timeout=10)

    def close(self) -> None:
        for runner in self._runners:
            runner.close()
        self._runners.clear()
        with self._workers_lock:
            workers, self.workers = list(self.workers), []
        for worker in workers:
            if isinstance(worker, WorkerAgent):
                worker.stop()
            elif worker.poll() is None:
                self._signal_group(worker, signal.SIGTERM)
                try:
                    worker.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    self._signal_group(worker, signal.SIGKILL)
                    worker.wait(timeout=5)
        self.coordinator.stop()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SubprocessWorkerFleet:
    """Autoscale driver for a standalone coordinator: real ``python -m
    repro.dist worker`` subprocesses, grown directly and shrunk through
    the broker's drain-then-exit retirement.

    This is what ``python -m repro.dist coordinator --autoscale
    min:max`` hands its autoscaler; it holds no broker state of its
    own -- the policy reads the status snapshot, this merely acts.
    """

    def __init__(self, coordinator: Coordinator, processes: int = 1,
                 slots: int | None = None,
                 heartbeat_period: float = 2.0,
                 compress: bool = True) -> None:
        self.coordinator = coordinator
        self.processes = processes
        self.slots = slots
        self.heartbeat_period = heartbeat_period
        self.compress = compress
        self._procs: list[subprocess.Popen] = []
        self._seq = itertools.count(1)
        self._lock = threading.Lock()

    def scale_up(self, n: int) -> None:
        for _ in range(max(0, n)):
            proc = spawn_worker_process(
                self.coordinator.address, processes=self.processes,
                slots=self.slots,
                heartbeat_period=self.heartbeat_period,
                name=f"auto-{next(self._seq)}", compress=self.compress)
            with self._lock:
                self._procs.append(proc)

    def scale_down(self, n: int) -> None:
        self.coordinator.retire_workers(n)
        self.reap()

    def reap(self) -> None:
        """Forget (and wait on) children that already drained out."""
        with self._lock:
            self._procs = [p for p in self._procs if p.poll() is None]

    def close(self, timeout: float = 10.0) -> None:
        """Terminate whatever is still running (coordinator shutdown
        already told them to exit; this is the backstop)."""
        with self._lock:
            procs, self._procs = self._procs, []
        for proc in procs:
            if proc.poll() is None:
                LocalCluster._signal_group(proc, signal.SIGTERM)
        deadline = time.monotonic() + timeout
        for proc in procs:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                LocalCluster._signal_group(proc, signal.SIGKILL)
                proc.wait(timeout=5)
