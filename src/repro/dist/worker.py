"""The thin on-node agent: lease jobs, run them locally, stream results.

A :class:`WorkerAgent` dials a coordinator, announces how many jobs it
can hold at once (its *slots*), and then sits in a read loop.  Each
``job`` frame carries an opaque pickle of ``(fn, arg)`` -- the exact
value the local :class:`~repro.scenarios.runner.CampaignRunner` would
have shipped to its process pool -- which the agent hands to its own
local executor:

- ``processes >= 1``: a ``ProcessPoolExecutor``, so jobs run with real
  parallelism and a job that corrupts or kills its interpreter takes
  down a child process, not the agent (a broken pool is respawned the
  same way the local runner recovers);
- ``processes = 0``: inline threads, the deterministic mode the
  in-process :class:`~repro.dist.cluster.LocalCluster` tests use.

A heartbeat thread pings the coordinator every ``heartbeat_period``
seconds; the *jobs* may take arbitrarily long (the coordinator's lease
deadline, not the heartbeat, bounds them).  Exceptions raised by a job
are caught and reported as failed results with the traceback text --
the agent itself only dies on coordinator loss or :meth:`stop`.

The hello frame advertises the optional protocol features from
:mod:`repro.dist.protocol`; against a coordinator that negotiates them
the agent compresses its frames (``zlib``) and coalesces results into
``result_batch`` frames (``batch``): finished jobs pile into an outbox
while a flush is on the wire, and the next flush ships all of them as
one frame -- one syscall for N wide-grid records, self-clocking to
however fast the socket drains.

A ``retire`` frame (the autoscaler's scale-down path) makes the agent
**drain-then-exit**: it announces ``slots: 0`` so the coordinator
grants it nothing further, finishes whatever jobs are already in its
executor, sends each result normally, and only then says goodbye --
shrinking a fleet under load loses no work.  A SIGKILL mid-drain still
looks like any crashed worker (no goodbye), so the coordinator's
requeue path covers that too.
"""

from __future__ import annotations

import socket
import threading
import traceback
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any

from repro.dist import coordinator as coordinator_mod
from repro.dist.protocol import (
    FEATURE_BATCH,
    FEATURE_ZLIB,
    MSG_GOODBYE,
    MSG_HEARTBEAT,
    MSG_JOB,
    MSG_JOB_BATCH,
    MSG_RESULT,
    MSG_RESULT_BATCH,
    MSG_RETIRE,
    MSG_SHUTDOWN,
    MSG_SLOTS,
    MSG_WELCOME,
    ConnectionClosed,
    ProtocolError,
    dumps_payload,
    loads_payload,
    negotiate_features,
    pack_blob_list,
    recv_message,
    send_message,
    split_batch,
    unpack_blob_list,
)

DEFAULT_HEARTBEAT_PERIOD = 2.0


def execute_job(payload: bytes) -> tuple[bool, Any]:
    """Run one pickled ``(fn, arg)`` job; never raises.

    Module-level so a process-pool worker can import it; the payload is
    unpickled *inside* the executing process, which is also what makes
    ``processes >= 1`` safe against jobs that wedge the interpreter.
    Returns ``(ok, value-or-traceback-text)``.
    """
    try:
        fn, arg = loads_payload(payload)
        return True, fn(arg)
    except BaseException:
        return False, traceback.format_exc()


def _result_size(entry: tuple[dict[str, Any], bytes | None]) -> int:
    """Payload bytes one outbox entry contributes to a batched frame."""
    payload = entry[1]
    return len(payload) if payload is not None else 0


def _trace_dropped(value: Any) -> int:
    """Rows the run's bounded ``Trace`` ring evicted, when the result
    is a campaign run record; 0 for arbitrary ``map_jobs`` values."""
    try:
        return int(value["metrics"]["trace_dropped"])
    except (TypeError, KeyError, ValueError, IndexError):
        return 0


class WorkerAgent:
    """Connect to ``address`` and serve jobs until stopped.

    ``processes`` selects the executor (see module docs); ``slots``
    defaults to the executor width, i.e. the agent leases exactly as
    many jobs as it can run concurrently.  ``compress=False`` stops the
    agent from advertising the ``zlib`` feature (frames stay raw both
    ways -- the interop escape hatch for debugging with packet dumps).
    """

    def __init__(self, address: str, processes: int = 1,
                 slots: int | None = None, name: str = "",
                 heartbeat_period: float = DEFAULT_HEARTBEAT_PERIOD,
                 connect_timeout: float = 10.0,
                 compress: bool = True) -> None:
        self.address = address
        self.processes = max(0, processes)
        self.slots = slots if slots is not None else max(1, self.processes)
        self.name = name or f"worker-{id(self):x}"
        self.heartbeat_period = heartbeat_period
        self.connect_timeout = connect_timeout
        self.compress = compress
        self._sock: socket.socket | None = None
        self._executor: Executor | None = None
        # Two locks with distinct jobs: _wire_lock serializes the
        # actual socket writes (a heartbeat injected between the
        # sendall(2) calls of a multi-megabyte result frame would
        # corrupt the stream); _send_lock only guards the outbox /
        # _flushing state, so producers can keep appending while a
        # flush's sendall blocks on the wire.
        self._wire_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._stopped = threading.Event()
        self._thread: threading.Thread | None = None
        # Negotiated at welcome; until then every send is plain.
        self._tx_compress = False
        self._batch = False
        # Result outbox for the batch path: finished jobs queue here
        # while another flush holds the socket; the flusher drains the
        # whole backlog as one result_batch frame per trip.
        self._outbox: list[tuple[dict[str, Any], bytes | None]] = []
        self._flushing = False
        # Drain-then-exit state: _inflight counts jobs handed to the
        # executor whose results have not shipped yet; once draining,
        # the last decrement (with an empty outbox) sends the goodbye.
        self._retire_lock = threading.Lock()
        self._inflight = 0
        self._draining = False
        self._goodbye_sent = False
        self.jobs_done = 0
        self.jobs_failed = 0

    # ------------------------------------------------------------------
    # Executor plumbing
    # ------------------------------------------------------------------
    def _make_executor(self) -> Executor:
        if self.processes >= 1:
            return ProcessPoolExecutor(max_workers=self.processes)
        return ThreadPoolExecutor(max_workers=max(1, self.slots),
                                  thread_name_prefix="dist-inline")

    def _submit(self, payload: bytes):
        """Submit one job, respawning a broken process pool in place."""
        assert self._executor is not None
        try:
            return self._executor.submit(execute_job, payload)
        except RuntimeError:
            # BrokenProcessPool (a prior job killed its child) leaves
            # the executor unusable; recover like the local runner.
            self._executor.shutdown(wait=False)
            self._executor = self._make_executor()
            return self._executor.submit(execute_job, payload)

    def _submit_job(self, job_id: str, attempt: int,
                    payload: bytes | memoryview) -> None:
        # The process pool pickles its arguments, and memoryview (the
        # zero-copy slice recv_message hands back) is not picklable --
        # materialize exactly at the boundary that needs it.  The
        # inline-thread executor reads the view in place.
        if self.processes >= 1 and isinstance(payload, memoryview):
            payload = bytes(payload)
        with self._retire_lock:
            self._inflight += 1
        future = self._submit(payload)
        future.add_done_callback(
            lambda f, job_id=job_id, attempt=attempt:
            self._on_job_done(job_id, attempt, f))

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _send(self, header: dict[str, Any],
              payload: bytes | memoryview | None = None) -> bool:
        sock = self._sock
        if sock is None:
            return False
        try:
            with self._wire_lock:
                send_message(sock, header, payload,
                             compress=self._tx_compress)
            return True
        except OSError:
            return False

    def _heartbeat_loop(self) -> None:
        while not self._stopped.wait(self.heartbeat_period):
            if not self._send({"type": MSG_HEARTBEAT}):
                return

    def _on_job_done(self, job_id: str, attempt: int, future) -> None:
        """Future callback: ship the result (or the traceback) back.
        ``attempt`` is echoed so the coordinator can tell this result
        apart from one for a different grant of the same job."""
        retryable = False
        payload: bytes | None = None
        try:
            ok, value = future.result()
        except BaseException:
            # The child process died under the job (os._exit, OOM-kill,
            # segfault) rather than the job raising: the execution was
            # *lost*, not completed, so let the coordinator retry it
            # within the job's attempt budget -- innocent jobs sharing
            # a broken pool come back this way too.
            ok, value, retryable = False, traceback.format_exc(), True
        if ok:
            try:
                payload = dumps_payload(value)
            except Exception:
                # Unpicklable result: a deterministic job defect, not a
                # lost execution -- report it now instead of letting
                # the lease expire with a misleading timeout error.
                ok, value = False, traceback.format_exc()
        if ok:
            self.jobs_done += 1
            meta: dict[str, Any] = {"job_id": job_id, "attempt": attempt,
                                    "ok": True}
            dropped = _trace_dropped(value)
            if dropped:
                # Silent-data-loss visibility: the coordinator folds
                # this into its status stats (the payload is opaque to
                # it, so the worker surfaces the counter here).
                meta["trace_dropped"] = dropped
        else:
            self.jobs_failed += 1
            meta = {"job_id": job_id, "attempt": attempt, "ok": False,
                    "retryable": retryable, "error": str(value)}
            payload = None
        if self._batch:
            self._send_result_batched(meta, payload)
        else:
            meta["type"] = MSG_RESULT
            self._send(meta, payload)
        with self._retire_lock:
            self._inflight -= 1
        self._maybe_finish_retire()

    def _maybe_finish_retire(self) -> None:
        """Send the retire goodbye once: draining, nothing in flight,
        and nothing still queued for (or mid-) flush -- a goodbye that
        overtook a batched result would strand that job until its
        lease expired."""
        with self._retire_lock:
            if (not self._draining or self._inflight > 0
                    or self._goodbye_sent):
                return
            with self._send_lock:
                if self._outbox or self._flushing:
                    return  # the active flusher re-checks when done
            self._goodbye_sent = True
        self._send({"type": MSG_GOODBYE})
        self._stopped.set()

    def _send_result_batched(self, meta: dict[str, Any],
                             payload: bytes | None) -> None:
        """Queue one result and flush the outbox unless another thread
        already holds the socket -- that flusher will pick this entry
        up on its next trip, coalescing everything that accumulated
        while its sendall() blocked into a single frame."""
        with self._send_lock:
            self._outbox.append((meta, payload))
            if self._flushing:
                return
            self._flushing = True
        try:
            while True:
                with self._send_lock:
                    batch, self._outbox = self._outbox, []
                    if not batch:
                        self._flushing = False
                        break
                self._flush_results(batch)
        except BaseException:
            with self._send_lock:
                self._flushing = False
            raise
        # This flusher may have shipped the final draining result; the
        # decrementing thread saw _flushing and deferred to us.
        self._maybe_finish_retire()

    def _flush_results(self, batch: list[tuple[dict[str, Any],
                                               bytes | None]]) -> None:
        sock = self._sock
        if sock is None:
            return
        # The outbox coalesces without bound, but one frame must not:
        # N individually-sendable results can sum past the frame cap,
        # so ship the backlog in budget-bounded chunks.
        for chunk in split_batch(batch, _result_size):
            try:
                with self._wire_lock:
                    self._send_result_chunk(sock, chunk)
            except OSError:
                return  # broken socket: the read loop owns the teardown
            except ProtocolError:
                # The chunk still packed past the cap (outsized metadata
                # headers): fall back to per-frame sends so one bad
                # entry cannot sink its batch-mates.
                for meta, payload in chunk:
                    try:
                        with self._wire_lock:
                            send_message(sock, dict(meta, type=MSG_RESULT),
                                         payload,
                                         compress=self._tx_compress)
                    except OSError:
                        return
                    except ProtocolError:
                        # This result alone exceeds the frame cap; its
                        # lease expires and the attempt budget decides.
                        continue

    def _send_result_chunk(self, sock: socket.socket,
                           chunk: list[tuple[dict[str, Any],
                                             bytes | None]]) -> None:
        if len(chunk) == 1:
            meta, payload = chunk[0]
            send_message(sock, dict(meta, type=MSG_RESULT), payload,
                         compress=self._tx_compress)
        else:
            header = {"type": MSG_RESULT_BATCH,
                      "results": [meta for meta, _ in chunk]}
            blobs = [payload if payload is not None else b""
                     for _, payload in chunk]
            send_message(sock, header, pack_blob_list(blobs),
                         compress=self._tx_compress)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Connect and serve until coordinator loss or :meth:`stop`."""
        features = [FEATURE_ZLIB, FEATURE_BATCH] if self.compress \
            else [FEATURE_BATCH]
        self._sock = coordinator_mod.connect(
            self.address, role="worker", name=self.name,
            timeout=self.connect_timeout, slots=self.slots,
            features=features)
        self._executor = self._make_executor()
        heartbeat = threading.Thread(target=self._heartbeat_loop,
                                     name="dist-heartbeat", daemon=True)
        heartbeat.start()
        try:
            while not self._stopped.is_set():
                header, payload = recv_message(self._sock)
                kind = header["type"]
                if kind == MSG_JOB:
                    self._submit_job(str(header["job_id"]),
                                     int(header.get("attempt", 1)),
                                     payload)
                elif kind == MSG_JOB_BATCH:
                    jobs = header.get("jobs", [])
                    blobs = unpack_blob_list(payload)
                    if len(blobs) != len(jobs):
                        raise ProtocolError("job_batch length mismatch")
                    for meta, blob in zip(jobs, blobs):
                        self._submit_job(str(meta["job_id"]),
                                         int(meta.get("attempt", 1)),
                                         blob)
                elif kind == MSG_WELCOME:
                    negotiated = negotiate_features(header.get("features"))
                    self._tx_compress = (self.compress
                                         and FEATURE_ZLIB in negotiated)
                    self._batch = FEATURE_BATCH in negotiated
                elif kind == MSG_RETIRE:
                    # Drain-then-exit: no new leases (slots 0), finish
                    # what's in the executor, then goodbye.  The
                    # coordinator closes the connection on our goodbye,
                    # which pops this loop out of recv_message.
                    with self._retire_lock:
                        self._draining = True
                    self._send({"type": MSG_SLOTS, "slots": 0})
                    self._maybe_finish_retire()
                elif kind == MSG_SHUTDOWN:
                    break
        except (ConnectionClosed, ProtocolError, OSError):
            pass
        finally:
            self._teardown()

    def start(self) -> "WorkerAgent":
        """Serve on a daemon thread (the in-process cluster mode)."""
        self._thread = threading.Thread(target=self.run, name="dist-worker",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful exit: close the socket, reap the executor."""
        self._stopped.set()
        self._teardown()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def kill(self) -> None:
        """Abrupt death for tests: drop the socket without goodbye, so
        the coordinator sees a mid-lease disconnect.  Jobs already in
        the executor keep running but their results have nowhere to go
        (exactly like a crashed host's would)."""
        self._stopped.set()
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()

    def _teardown(self) -> None:
        self._stopped.set()
        sock, self._sock = self._sock, None
        if sock is not None:
            # shutdown() before close(): closing alone does not wake a
            # thread blocked in recv() on the same socket.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)
