"""The asyncio-native coordinator core: one loop, thousands of peers.

The original broker was thread-per-connection -- simple to reason
about, but every peer cost two OS threads (reader + blocked writer)
and a slow client could stall a worker's result fan-in on its send
lock.  This module is the same leasing state machine rewritten onto a
single event loop:

- **one reader/writer task pair per peer**: the reader parses frames
  off an ``asyncio`` stream; the writer drains a bounded send queue,
  *coalescing* every frame already queued into one ``write()`` syscall
  before awaiting ``drain()`` -- so a worker being granted 32 leases
  or a client receiving a burst of results pays one syscall, not 32;
- **backpressure end to end**: send queues are bounded, ``await
  put()`` suspends the producing task when a peer falls behind, and
  ``drain()`` honours the transport's write watermark.  The status
  broadcaster is the one producer that must never block, so it uses a
  lossy ``put_nowait`` and unsubscribes peers that cannot keep up;
- **timers instead of threads**: the lease/heartbeat reaper and the
  status broadcaster are loop tasks, and the broadcaster builds **one**
  snapshot per tick no matter how many subscribers are due
  (``snapshots_built``/``status_updates_sent`` count both sides so a
  regression test can hold the ratio);
- **no locks**: every piece of broker state is touched only from the
  loop thread.  The synchronous :class:`~repro.dist.coordinator
  .Coordinator` facade marshals ``status()``/``stop()`` onto the loop
  via ``run_coroutine_threadsafe``.

Wire semantics are unchanged from the threaded broker -- same frame
types, same lease/requeue/first-result-wins rules, same ``status()``
shape -- plus the negotiated extensions from :mod:`repro.dist
.protocol`: per-frame zlib compression toward ``"zlib"`` peers,
``job_batch``/``result_batch`` frames toward ``"batch"`` peers, and
per-submit scheduling weights from ``"sched"`` clients.

**Fair-share scheduling.**  Pending jobs live in per-campaign queues
(one per client batch) drained by the weighted deficit-round-robin
arbiter in :mod:`repro.dist.fairshare` rather than one global FIFO: a
tenant's grant share tracks its declared ``weight`` (default 1;
clients that never negotiated ``"sched"`` are plain weight-1 tenants,
which for a single client is *exactly* the old FIFO order), a
late-arriving campaign starts earning grants immediately instead of
waiting out every earlier backlog, and a requeued crashed lease goes
back to the front of its **own** campaign's queue.

**Autoscaling.**  :meth:`AsyncCoordinator.set_autoscaler` attaches an
:class:`~repro.dist.autoscale.Autoscaler` evaluated on a loop timer
against the same status snapshot everything else reads; its driver
grows the fleet or asks the broker to *retire* workers --
drain-then-exit via the ``retire``/``slots`` frames, so scale-down
never requeues in-flight work.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Coroutine

from repro.dist.fairshare import FairScheduler, validate_weight
from repro.dist.protocol import (
    FEATURE_BATCH,
    FEATURE_SCHED,
    FEATURE_ZLIB,
    MSG_DONE,
    MSG_ERROR,
    MSG_GOODBYE,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_JOB,
    MSG_JOB_BATCH,
    MSG_RESULT,
    MSG_RESULT_BATCH,
    MSG_RETIRE,
    MSG_SHUTDOWN,
    MSG_SLOTS,
    MSG_STATUS,
    MSG_STATUS_UPDATE,
    MSG_STOPPING,
    MSG_SUBSCRIBE,
    MSG_SUBSCRIBED,
    MSG_SUBMIT,
    MSG_UNSUBSCRIBE,
    MSG_WELCOME,
    ConnectionClosed,
    ProtocolError,
    negotiate_features,
    pack_blob_list,
    pack_message,
    recv_message_async,
    split_batch,
    unpack_blob_list,
)

__all__ = ["AsyncCoordinator", "CoordinatorStats", "JobRecord", "Lease"]

LEASE_WAIT_WINDOW = 512
"""Recent lease queue-waits kept for the p50/p95 percentiles the
status snapshot (and through it the autoscale policy) reports."""

DEFAULT_LEASE_TIMEOUT = 300.0
DEFAULT_WORKER_TIMEOUT = 15.0
DEFAULT_MAX_ATTEMPTS = 3

SEND_QUEUE_FRAMES = 1024
"""Per-peer bound on queued outbound frames; a producer hitting it
suspends (backpressure) instead of buffering without limit."""

COALESCE_BYTES = 1 << 20
"""Stop folding queued frames into one write() past this many bytes --
one syscall per megabyte is already amortized, and unbounded coalescing
would let a fast producer starve ``drain()``."""

BROADCAST_TICK = 0.25
"""The status broadcaster's timer period (subscriber periods are
honoured per-client on top of this resolution)."""


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0.0 when
    empty) -- plenty for a scaling signal; no interpolation needed."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[rank]


@dataclass
class JobRecord:
    """One submitted job: an opaque pre-pickled payload plus lease
    bookkeeping.  ``attempts`` counts lease *grants*, so a job seen by
    ``max_attempts`` workers without an answer is declared failed.

    ``key`` is the broker-internal identity
    (``c<client>b<batch>:<job_id>``): two clients are free to pick
    colliding job ids, and one client's sequential batches reuse them,
    so every queue, lease and wire frame between coordinator and
    workers uses the namespaced key -- a straggler result for a
    *previous* batch's job can then never settle the same id in a
    later batch.  Only the frames back to the owning client carry its
    original ``job_id``."""

    key: str
    job_id: str
    payload: bytes | memoryview
    client_id: int
    max_attempts: int
    attempts: int = 0
    # When the job entered the queue (monotonic); the gap to its first
    # lease grant is the queue-wait the status stream reports.
    submitted_at: float = 0.0
    # Workers that already lost/timed out this job: retries prefer
    # anyone else (falling back to them only when nobody else has a
    # free slot, so exclusion can never starve a job).
    excluded: set[int] = field(default_factory=set)
    # Fair-share lane: the campaign key (``c<client>b<batch>``) and the
    # tenant weight it was submitted under, so a requeue returns the
    # job to the front of its own campaign's queue.
    campaign: str = ""
    weight: float = 1.0


@dataclass
class Lease:
    job: JobRecord
    worker_id: int
    deadline: float
    # Which grant this lease represents; results echo it so a stale
    # frame from a previous attempt on the SAME worker cannot be
    # mistaken for the live one.
    attempt: int = 0


@dataclass
class CoordinatorStats:
    """Counters the status endpoint and tests read."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    jobs_requeued: int = 0
    workers_dropped: int = 0
    # Workers asked to drain-and-exit by the autoscaler (or an
    # operator); their eventual disconnects count in workers_dropped
    # too, so dropped - retired approximates *unplanned* losses.
    workers_retired: int = 0
    results_ignored: int = 0
    # Trace-ring rows evicted inside completed runs (reported by the
    # workers per result frame): silent data loss made visible.
    trace_dropped: int = 0


class _AioPeer:
    """One connection: streams, negotiated features, and the bounded
    send queue its writer task drains with frame coalescing."""

    __slots__ = ("id", "name", "reader", "writer", "features", "compress",
                 "batch", "alive", "queue", "writer_task")

    def __init__(self, peer_id: int, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, name: str,
                 features: set[str]) -> None:
        self.id = peer_id
        self.name = name
        self.reader = reader
        self.writer = writer
        self.features = features
        self.compress = FEATURE_ZLIB in features
        self.batch = FEATURE_BATCH in features
        self.alive = True
        self.queue: asyncio.Queue[bytes | None] = \
            asyncio.Queue(maxsize=SEND_QUEUE_FRAMES)
        self.writer_task: asyncio.Task | None = None

    async def send(self, header: dict[str, Any],
                   payload: bytes | memoryview | None = None) -> bool:
        """Queue one frame (suspending when the peer is backlogged).
        A dead peer just reports False -- its reader task owns the
        actual teardown, exactly like the threaded broker."""
        if not self.alive:
            return False
        frame = pack_message(header, payload, compress=self.compress)
        await self.queue.put(frame)
        return self.alive

    def try_send(self, header: dict[str, Any],
                 payload: bytes | memoryview | None = None) -> bool:
        """Lossy queue attempt for producers that must never block
        (the status broadcaster): False when dead or backlogged."""
        if not self.alive:
            return False
        frame = pack_message(header, payload, compress=self.compress)
        try:
            self.queue.put_nowait(frame)
        except asyncio.QueueFull:
            return False
        return True

    def close_queue(self) -> None:
        """Ask the writer task to flush what is queued and close."""
        try:
            self.queue.put_nowait(None)
        except asyncio.QueueFull:
            # Backlogged peer at shutdown: drop the backlog, keep the
            # sentinel so the writer still exits promptly.
            while True:
                try:
                    self.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            self.queue.put_nowait(None)

    def abort(self) -> None:
        self.alive = False
        try:
            self.writer.transport.abort()
        except Exception:  # noqa: BLE001 - transport may be half-dead
            pass


class _AioWorker(_AioPeer):
    __slots__ = ("slots", "inflight", "last_seen", "leases_granted",
                 "lease_wait_total", "retiring")

    def __init__(self, peer_id, reader, writer, name, features,
                 slots: int) -> None:
        super().__init__(peer_id, reader, writer, name, features)
        self.slots = max(1, slots)
        self.inflight: set[str] = set()
        self.last_seen = time.monotonic()
        # Lease-latency health: grants and cumulative queue-wait of the
        # jobs granted to this worker.
        self.leases_granted = 0
        self.lease_wait_total = 0.0
        # Drain-then-exit: set the moment a retire frame is sent, so
        # the very next grant round already skips this worker (its own
        # slots=0 announcement is merely confirmation).
        self.retiring = False


class _AioClient(_AioPeer):
    __slots__ = ("outstanding", "completed", "failed", "batches",
                 "subscribed", "subscribe_period", "last_push",
                 "batch_started", "batch_settled", "result_outbox",
                 "flush_scheduled", "done_payload", "sched", "weight")

    def __init__(self, peer_id, reader, writer, name, features) -> None:
        super().__init__(peer_id, reader, writer, name, features)
        self.outstanding: set[str] = set()
        self.completed = 0
        self.failed = 0
        self.batches = 0
        # Fair-share tenancy: weights are only honoured from clients
        # that negotiated "sched" (old clients stay weight-1 lanes).
        self.sched = FEATURE_SCHED in features
        self.weight = 1.0
        # Status-stream subscription (set by a "subscribe" frame).  The
        # broadcaster timer pushes "status_update" frames at
        # ``subscribe_period`` while ``subscribed``.
        self.subscribed = False
        self.subscribe_period = 1.0
        self.last_push = 0.0
        # When the current batch's first jobs arrived: progress rate and
        # ETA are measured against this origin.  ``batch_settled`` pins
        # the clock the moment the batch drains, so a snapshot built
        # ticks later reports the batch's true rate instead of one
        # diluted by post-completion idle time.
        self.batch_started = 0.0
        self.batch_settled = 0.0
        # Batch-path delivery: settled results pile here until the
        # scheduled flush ships them as one result_batch frame.  The
        # done frame's counters are captured at settle time (a submit
        # racing the flush must not reset them under it).
        self.result_outbox: list[tuple[dict[str, Any],
                                       Any]] = []
        self.flush_scheduled = False
        self.done_payload: dict[str, Any] | None = None


class AsyncCoordinator:
    """The loop-resident broker core.

    Constructed with an already-bound listening socket (the sync
    facade binds in ``__init__`` so ``.port`` is readable before the
    loop exists) and driven by :meth:`run`, which serves until
    :meth:`request_stop` and then tears every peer down.  ``on_stop``
    fires the moment a stop is *initiated* -- client-driven shutdown
    included -- so the facade's ``threading.Event`` is observable as
    soon as the requester's ack arrives.
    """

    def __init__(self, listener: socket.socket,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 on_stop: Callable[[], None] | None = None) -> None:
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        self.lease_timeout = lease_timeout
        self.worker_timeout = worker_timeout
        self.max_attempts = max(1, max_attempts)
        self.on_stop = on_stop
        self.stats = CoordinatorStats()
        # Per-campaign queues under a weighted deficit-round-robin
        # arbiter; jobs settled out-of-band (first result wins, client
        # gone) leave stale queue entries the is_live predicate prunes,
        # exactly like the old FIFO deque's lazy cleanup.
        self._sched = FairScheduler(
            is_live=lambda job: job.key in self._jobs)
        self._jobs: dict[str, JobRecord] = {}
        self._leases: dict[str, Lease] = {}
        self._workers: dict[int, _AioWorker] = {}
        self._clients: dict[int, _AioClient] = {}
        self._peer_ids = itertools.count(1)
        self._conn_tasks: set[asyncio.Task] = set()
        self._server: asyncio.base_events.Server | None = None
        self._stop_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping = False
        # Deferred-dispatch flag: result frames mark dispatch due and a
        # single task granted at the next loop turn covers every result
        # the reader drained from its buffer in between -- so a burst of
        # N results costs one grant round and one job_batch frame, not N
        # single-job grants.
        self._dispatch_scheduled = False
        # Broadcaster accounting (one snapshot per tick, shared across
        # every due subscriber): the regression test pins the ratio.
        self.snapshots_built = 0
        self.status_updates_sent = 0
        # Recent lease queue-waits: the p50/p95 the status snapshot
        # reports (and the autoscale policy keys on).
        self._lease_waits: deque[float] = deque(maxlen=LEASE_WAIT_WINDOW)
        # Optional autoscaler, evaluated on its own loop timer.  Driver
        # calls may block (subprocess spawns), so ticks run in the
        # default executor, never on the loop.
        self._autoscaler = None
        self._autoscale_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle (loop thread)
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def run(self, on_serving: Callable[[], None] | None = None,
                  ) -> None:
        """Serve until :meth:`request_stop`, then shut down cleanly."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if self._stopping:
            # request_stop() raced ahead of run(): honour it now, or
            # the fresh event below would be waited on forever.
            self._stop_event.set()
        # A generous stream buffer: result frames for wide grids run to
        # megabytes, and the default 64 KiB limit would bounce the
        # transport between pause/resume for every frame.
        self._server = await asyncio.start_server(
            self._on_connection, sock=self._listener, limit=1 << 20)
        timers = [asyncio.ensure_future(self._reaper_loop()),
                  asyncio.ensure_future(self._broadcast_loop())]
        if self._autoscaler is not None and self._autoscale_task is None:
            self._autoscale_task = asyncio.ensure_future(
                self._autoscale_loop())
        if on_serving is not None:
            on_serving()
        try:
            await self._stop_event.wait()
        finally:
            if self._autoscale_task is not None:
                timers.append(self._autoscale_task)
                self._autoscale_task = None
            for timer in timers:
                timer.cancel()
            await asyncio.gather(*timers, return_exceptions=True)
            await self._shutdown()

    def request_stop(self) -> None:
        """Initiate shutdown (idempotent; loop thread or threadsafe via
        ``loop.call_soon_threadsafe``)."""
        if self._stopping:
            return
        self._stopping = True
        if self.on_stop is not None:
            self.on_stop()
        if self._stop_event is not None:
            self._stop_event.set()

    async def _shutdown(self) -> None:
        """Close the listener, tell workers to exit, flush and drop
        every peer, then reap the connection tasks."""
        if self._server is not None:
            self._server.close()
        for worker in list(self._workers.values()):
            worker.try_send({"type": MSG_SHUTDOWN})
        for peer in (list(self._workers.values())
                     + list(self._clients.values())):
            peer.close_queue()
        if self._conn_tasks:
            _done, pending = await asyncio.wait(
                set(self._conn_tasks), timeout=2.0)
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    # Per-peer reader/writer tasks
    # ------------------------------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        """Handshake, then the role-specific read loop.  A malformed
        hello just drops the connection -- a bad peer must not kill
        the broker or leak the accepted transport."""
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
        try:
            try:
                header, _payload = await asyncio.wait_for(
                    recv_message_async(reader), timeout=30.0)
                if header.get("type") != MSG_HELLO:
                    raise ProtocolError("expected hello")
                role = header.get("role")
                if role == "worker":
                    slots = int(header.get("slots", 1))
                elif role != "client":
                    raise ProtocolError(f"unknown role {role!r}")
                peer_id = next(self._peer_ids)
                name = str(header.get("name", f"peer-{peer_id}"))
                features = negotiate_features(header.get("features"))
            except (ConnectionClosed, ProtocolError, asyncio.TimeoutError,
                    OSError, ValueError, TypeError):
                writer.transport.abort()
                return
            if role == "worker":
                worker = _AioWorker(peer_id, reader, writer, name,
                                    features, slots)
                worker.writer_task = asyncio.ensure_future(
                    self._writer_loop(worker))
                self._workers[peer_id] = worker
                await worker.send({"type": MSG_WELCOME,
                                   "worker_id": peer_id,
                                   "features": sorted(features)})
                await self._dispatch()
                await self._worker_loop(worker)
            else:
                client = _AioClient(peer_id, reader, writer, name,
                                    features)
                client.writer_task = asyncio.ensure_future(
                    self._writer_loop(client))
                self._clients[peer_id] = client
                await client.send({"type": MSG_WELCOME,
                                   "client_id": peer_id,
                                   "features": sorted(features)})
                await self._client_loop(client)
        except asyncio.CancelledError:
            writer.transport.abort()
            raise

    async def _writer_loop(self, peer: _AioPeer) -> None:
        """Drain the peer's send queue: every frame already queued is
        folded into one ``write()`` (bounded by :data:`COALESCE_BYTES`),
        then ``drain()`` applies the transport's backpressure."""
        writer = peer.writer
        stop = False
        try:
            while not stop:
                frame = await peer.queue.get()
                if frame is None:
                    break
                total = len(frame)
                chunks = [frame]
                while total < COALESCE_BYTES:
                    try:
                        nxt = peer.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if nxt is None:
                        stop = True
                        break
                    chunks.append(nxt)
                    total += len(nxt)
                writer.write(chunks[0] if len(chunks) == 1
                             else b"".join(chunks))
                await writer.drain()
            # Graceful path: flush buffered bytes before closing.
            try:
                await asyncio.wait_for(writer.drain(), timeout=1.0)
            except (asyncio.TimeoutError, ConnectionError, OSError):
                pass
            writer.close()
        except (ConnectionError, OSError, asyncio.CancelledError):
            peer.alive = False
            writer.transport.abort()

    async def _worker_loop(self, worker: _AioWorker) -> None:
        try:
            while not self._stopping:
                header, payload = await recv_message_async(worker.reader)
                kind = header["type"]
                if kind == MSG_HEARTBEAT:
                    worker.last_seen = time.monotonic()
                elif kind == MSG_RESULT:
                    worker.last_seen = time.monotonic()
                    await self._on_result(
                        worker, str(header["job_id"]),
                        bool(header["ok"]), header.get("error"), payload,
                        retryable=bool(header.get("retryable")),
                        attempt=int(header.get("attempt", 0)),
                        trace_dropped=int(header.get("trace_dropped", 0)))
                    self._schedule_dispatch()
                elif kind == MSG_RESULT_BATCH:
                    worker.last_seen = time.monotonic()
                    results = header.get("results", [])
                    blobs = unpack_blob_list(payload)
                    if len(blobs) != len(results):
                        raise ProtocolError("result_batch length mismatch")
                    for meta, blob in zip(results, blobs):
                        await self._on_result(
                            worker, str(meta["job_id"]),
                            bool(meta["ok"]), meta.get("error"), blob,
                            retryable=bool(meta.get("retryable")),
                            attempt=int(meta.get("attempt", 0)),
                            trace_dropped=int(meta.get("trace_dropped",
                                                       0)))
                    self._schedule_dispatch()
                elif kind == MSG_SLOTS:
                    # Capacity re-announcement (a retiring worker's
                    # slots hit 0; an elastic worker could also grow).
                    worker.last_seen = time.monotonic()
                    worker.slots = max(0, int(header.get("slots", 0)))
                    if worker.slots > len(worker.inflight):
                        self._schedule_dispatch()
                elif kind == MSG_GOODBYE:
                    break
        except (ConnectionClosed, ProtocolError, OSError,
                KeyError, ValueError, TypeError):
            pass  # malformed frame == broken peer: drop it
        finally:
            await self._drop_worker(worker, "disconnected")

    async def _client_loop(self, client: _AioClient) -> None:
        try:
            while not self._stopping:
                header, payload = await recv_message_async(client.reader)
                kind = header["type"]
                if kind == MSG_SUBMIT:
                    await self._on_submit(client, header, payload)
                elif kind == MSG_STATUS:
                    await client.send({"type": MSG_STATUS,
                                       "status": self.build_status()})
                elif kind == MSG_SUBSCRIBE:
                    try:
                        period = float(header.get("period", 1.0))
                    except (TypeError, ValueError):
                        period = 1.0
                    client.subscribe_period = max(0.1, period)
                    client.last_push = 0.0
                    client.subscribed = True
                    await client.send({"type": MSG_SUBSCRIBED,
                                       "period": client.subscribe_period})
                elif kind == MSG_UNSUBSCRIBE:
                    client.subscribed = False
                elif kind == MSG_SHUTDOWN:
                    # Stop first (so the requester observes a stopped
                    # broker the moment its ack/EOF arrives), then ack
                    # best-effort -- the shutdown path flushes queues.
                    self.request_stop()
                    await client.send({"type": MSG_STOPPING})
                    break
                elif kind == MSG_GOODBYE:
                    break
        except (ConnectionClosed, ProtocolError, OSError,
                KeyError, ValueError, TypeError):
            pass  # malformed frame == broken peer: drop it
        finally:
            await self._drop_client(client)

    # ------------------------------------------------------------------
    # Leasing core (single-threaded on the loop: no locks)
    # ------------------------------------------------------------------
    async def _on_submit(self, client: _AioClient, header: dict[str, Any],
                         payload: memoryview) -> None:
        job_ids = [str(j) for j in header.get("job_ids", [])]
        # Length-prefixed split, NOT pickle: the broker never unpickles
        # client data -- only workers (which execute the jobs anyway)
        # unpickle the individual blobs.  The slices are memoryviews
        # over the received envelope: relayed, never copied.
        blobs = unpack_blob_list(payload)
        if len(blobs) != len(job_ids):
            await client.send({"type": MSG_ERROR,
                               "error": "job_ids/payload length mismatch"})
            return
        max_attempts = int(header.get("max_attempts", self.max_attempts))
        weight = 1.0
        if client.sched and "weight" in header:
            try:
                weight = validate_weight(header["weight"])
            except ValueError as exc:
                # Reject the whole submit: silently clamping a zero or
                # NaN weight would hand the tenant a share it never
                # asked for (or none at all, forever).
                await client.send({"type": MSG_ERROR, "error": str(exc)})
                return
        now = time.monotonic()
        if not client.outstanding:
            # A fresh batch on a reused connection: the done-frame
            # counters describe one batch, not the connection's life.
            client.completed = client.failed = 0
            client.batch_started = now
            client.batch_settled = 0.0
        client.weight = weight
        client.batches += 1
        prefix = f"c{client.id}b{client.batches}"
        for job_id, blob in zip(job_ids, blobs):
            record = JobRecord(key=f"{prefix}:{job_id}",
                               job_id=job_id, payload=blob,
                               client_id=client.id,
                               max_attempts=max(1, max_attempts),
                               submitted_at=now,
                               campaign=prefix, weight=weight)
            self._jobs[record.key] = record
            self._sched.enqueue(prefix, weight, record)
            client.outstanding.add(record.key)
        self.stats.jobs_submitted += len(job_ids)
        # No "accepted" ack: a fast batch could complete (result + done
        # frames) before an ack sent here, leaving a stray frame that
        # would desync the client's next status/shutdown exchange.  The
        # result stream itself is the acknowledgement.
        await self._dispatch()

    def _grant_round(self) -> dict[_AioWorker, list[JobRecord]]:
        """Grant as many pending jobs as current capacity allows
        (largest-deficit campaign first -- the weighted round-robin --
        then least-loaded worker, avoiding workers that already lost
        the job).  Retiring workers are skipped outright: they are
        draining toward goodbye.  Pure state mutation; the caller sends
        the accumulated grants, batched per worker."""
        grants: dict[_AioWorker, list[JobRecord]] = {}
        while True:
            pick = self._sched.peek()
            if pick is None:
                break
            candidates = [w for w in self._workers.values()
                          if w.alive and not w.retiring
                          and len(w.inflight) < w.slots]
            if not candidates:
                break
            queue, job = pick
            eligible = [w for w in candidates
                        if w.id not in job.excluded] or candidates
            worker = min(eligible, key=lambda w: (len(w.inflight), w.id))
            self._sched.commit(queue)
            job.attempts += 1
            worker.inflight.add(job.key)
            now = time.monotonic()
            worker.leases_granted += 1
            wait = max(0.0, now - job.submitted_at)
            worker.lease_wait_total += wait
            self._lease_waits.append(wait)
            self._leases[job.key] = Lease(
                job=job, worker_id=worker.id,
                deadline=now + self.lease_timeout,
                attempt=job.attempts)
            grants.setdefault(worker, []).append(job)
        return grants

    def _schedule_dispatch(self) -> None:
        """Mark a grant round due at the next loop turn (idempotent).

        The reader task parses every frame already buffered on its
        stream *without yielding*, so by the time the scheduled task
        runs, a worker's whole result burst has been settled -- the one
        grant round then refills that worker with one ``job_batch``
        frame instead of a single-job frame per result."""
        if self._dispatch_scheduled or self._stopping or self._loop is None:
            return
        self._dispatch_scheduled = True
        self._loop.create_task(self._scheduled_dispatch())

    async def _scheduled_dispatch(self) -> None:
        self._dispatch_scheduled = False
        await self._dispatch()

    async def _dispatch(self) -> None:
        """Grant pending jobs and ship them: one ``job_batch`` frame
        per worker round for ``"batch"`` peers, per-job frames
        otherwise.  A send that finds the peer dead is resolved by the
        peer's own teardown (which requeues)."""
        if self._stopping:
            return
        grants = self._grant_round()
        for worker, jobs in grants.items():
            if worker.batch and len(jobs) > 1:
                # Budget-bounded chunks: a grant round of individually
                # relayable payloads must never aggregate into a frame
                # pack_message rejects.
                for chunk in split_batch(jobs,
                                         lambda job: len(job.payload)):
                    if len(chunk) == 1:
                        await worker.send(
                            {"type": MSG_JOB, "job_id": chunk[0].key,
                             "attempt": chunk[0].attempts},
                            chunk[0].payload)
                        continue
                    header = {"type": MSG_JOB_BATCH,
                              "jobs": [{"job_id": job.key,
                                        "attempt": job.attempts}
                                       for job in chunk]}
                    await worker.send(
                        header,
                        pack_blob_list([job.payload for job in chunk]))
            else:
                for job in jobs:
                    await worker.send({"type": MSG_JOB, "job_id": job.key,
                                       "attempt": job.attempts},
                                      job.payload)

    async def _on_result(self, worker: _AioWorker, key: str, ok: bool,
                         error: str | None, payload: memoryview | None,
                         retryable: bool = False, attempt: int = 0,
                         trace_dropped: int = 0) -> None:
        job = self._jobs.get(key)
        if job is None:
            # Stale: the job was settled earlier (first result won, or
            # its client went away).  Free the bookkeeping only.
            worker.inflight.discard(key)
            self.stats.results_ignored += 1
            return
        if not ok and retryable:
            # The worker is alive but *lost* the execution (its pool
            # child died): requeue within the attempt budget -- but
            # only if this worker still holds the lease *for this
            # attempt*; a revoked or re-granted lease means the job is
            # already someone else's (or a newer grant's) problem, and
            # revoking it here would burn the budget under a live
            # execution.
            lease = self._leases.get(key)
            if (lease is None or lease.worker_id != worker.id
                    or (attempt and lease.attempt != attempt)):
                self.stats.results_ignored += 1
                return
            worker.inflight.discard(key)
            await self._requeue(job, f"execution lost: {error}",
                                exclude_worker=worker.id)
            return
        # Success (or a deterministic job failure): first result wins
        # regardless of which attempt produced it.
        self._settle(job)
        worker.inflight.discard(key)
        if ok and trace_dropped > 0:
            self.stats.trace_dropped += trace_dropped
        await self._deliver(job, ok, error, payload)

    def _settle(self, job: JobRecord) -> None:
        """Remove a job from every queue/lease."""
        del self._jobs[job.key]
        lease = self._leases.pop(job.key, None)
        if lease is not None:
            holder = self._workers.get(lease.worker_id)
            if holder is not None:
                holder.inflight.discard(job.key)
        # A stale entry may remain in its campaign queue; the
        # scheduler's is_live predicate prunes it on the next peek.

    async def _deliver(self, job: JobRecord, ok: bool, error: str | None,
                       payload: memoryview | bytes | None) -> None:
        """Forward one settled job to its client (+ ``done`` when that
        client's batch is drained).  Single-threaded on the loop and
        FIFO through the client's send queue, so the ``done`` frame can
        never overtake the last ``result``.

        ``"batch"`` clients get the outbox path instead: results pile
        up while the reader keeps settling, and a flush task ships the
        whole pile as one ``result_batch`` frame at the next loop turn.
        The ``done`` payload is captured *here* (at settle time) so a
        new submit racing the flush cannot reset the counters under
        it."""
        client = self._clients.get(job.client_id)
        if ok:
            self.stats.jobs_completed += 1
        else:
            self.stats.jobs_failed += 1
        if client is None:
            return
        client.outstanding.discard(job.key)
        if ok:
            client.completed += 1
        else:
            client.failed += 1
        if not client.outstanding:
            # Batch drained: pin the progress clock now, so a snapshot
            # built ticks later reports the batch's real rate (and no
            # phantom ETA) instead of numbers diluted by idle time.
            client.batch_settled = time.monotonic()
        meta: dict[str, Any] = {"job_id": job.job_id,
                                "ok": ok, "attempts": job.attempts}
        if error is not None:
            meta["error"] = error
        if client.batch:
            client.result_outbox.append((meta, payload))
            if not client.outstanding:
                client.done_payload = {"type": MSG_DONE,
                                       "completed": client.completed,
                                       "failed": client.failed}
            self._schedule_client_flush(client)
            return
        header = dict(meta)
        header["type"] = MSG_RESULT
        await client.send(header, payload)
        if not client.outstanding:
            await client.send({"type": MSG_DONE,
                               "completed": client.completed,
                               "failed": client.failed})

    def _schedule_client_flush(self, client: _AioClient) -> None:
        if client.flush_scheduled or self._loop is None:
            return
        client.flush_scheduled = True
        self._loop.create_task(self._flush_client(client))

    async def _flush_client(self, client: _AioClient) -> None:
        """Ship a batch client's accumulated results (one frame) and,
        when its batch drained, the captured ``done``."""
        client.flush_scheduled = False
        batch = client.result_outbox
        if batch:
            client.result_outbox = []
            # Same budget rule as _dispatch: the outbox coalesces
            # without bound, one frame must not.
            for chunk in split_batch(
                    batch, lambda entry: (len(entry[1])
                                          if entry[1] is not None else 0)):
                if len(chunk) == 1:
                    meta, payload = chunk[0]
                    header = dict(meta)
                    header["type"] = MSG_RESULT
                    await client.send(header, payload)
                else:
                    await client.send(
                        {"type": MSG_RESULT_BATCH,
                         "results": [meta for meta, _payload in chunk]},
                        pack_blob_list(
                            [payload if payload is not None else b""
                             for _meta, payload in chunk]))
        done = client.done_payload
        if done is not None:
            client.done_payload = None
            await client.send(done)

    async def _requeue(self, job: JobRecord, reason: str,
                       exclude_worker: int | None = None) -> None:
        """Take a lease back; deliver the failure when the job is out
        of attempts.  ``exclude_worker`` marks the worker that just
        lost the job, so the retry lands elsewhere whenever anyone
        else has capacity."""
        self._leases.pop(job.key, None)
        if job.attempts >= job.max_attempts:
            del self._jobs[job.key]
            await self._deliver(job, False,
                                f"worker lost after {job.attempts} "
                                f"attempt(s): {reason}", None)
            return
        if exclude_worker is not None:
            job.excluded.add(exclude_worker)
        self.stats.jobs_requeued += 1
        # Front of its own campaign's queue: the retry neither jumps
        # another tenant's lane nor falls behind its batch-mates.
        self._sched.enqueue(job.campaign, job.weight, job, front=True)

    async def _drop_worker(self, worker: _AioWorker, reason: str) -> None:
        """Remove a worker and requeue everything it was leasing."""
        if self._workers.pop(worker.id, None) is None:
            return  # already dropped by the reaper
        self.stats.workers_dropped += 1
        for key in sorted(worker.inflight):
            lease = self._leases.get(key)
            if lease is None or lease.worker_id != worker.id:
                continue
            await self._requeue(lease.job, reason)
        worker.inflight.clear()
        worker.alive = False
        worker.close_queue()
        await self._dispatch()

    async def _drop_client(self, client: _AioClient) -> None:
        """Forget a client: its unfinished jobs are cancelled (workers
        already executing them will report into the void)."""
        if self._clients.pop(client.id, None) is None:
            return
        for key in list(client.outstanding):
            job = self._jobs.get(key)
            if job is not None:
                self._settle(job)
        client.alive = False
        client.close_queue()

    # ------------------------------------------------------------------
    # Elastic fleet: retirement + autoscaling
    # ------------------------------------------------------------------
    async def retire_workers_async(self, n: int = 1) -> int:
        """Ask up to ``n`` workers to drain-then-exit, idle-first (a
        scale-down should prefer departures that strand nothing).  The
        worker finishes its in-flight leases, announces zero slots and
        disconnects itself; broker-side it stops receiving grants the
        moment the retire frame is queued.  Returns how many workers
        were asked."""
        victims = sorted(
            (w for w in self._workers.values()
             if w.alive and not w.retiring),
            key=lambda w: (len(w.inflight), -w.id))
        count = 0
        for worker in victims[:max(0, n)]:
            worker.retiring = True
            # Zero broker-side immediately (the worker's own slots=0
            # announcement merely confirms): fleet_size and the next
            # policy tick must not count a draining worker.
            worker.slots = 0
            self.stats.workers_retired += 1
            await worker.send({"type": MSG_RETIRE})
            count += 1
        return count

    def set_autoscaler(self, autoscaler) -> None:
        """Attach (or replace/remove) the autoscaler.  Loop thread
        only -- the sync facade marshals here threadsafely.  Starts the
        evaluation timer if the loop is already serving; otherwise
        :meth:`run` starts it."""
        self._autoscaler = autoscaler
        if (autoscaler is not None and self._autoscale_task is None
                and self._loop is not None and not self._stopping):
            self._autoscale_task = self._loop.create_task(
                self._autoscale_loop())

    async def _autoscale_loop(self) -> None:
        """Evaluate the policy against a fresh snapshot on its own
        timer.  Driver actions may block (subprocess spawns, a facade
        round-trip back into this loop for retirement), so each tick
        runs in the default executor while the loop keeps serving."""
        while True:
            autoscaler = self._autoscaler
            if autoscaler is None:
                return
            await asyncio.sleep(autoscaler.period)
            if self._stopping or self._autoscaler is None:
                return
            snapshot = self.build_status()
            try:
                await asyncio.get_running_loop().run_in_executor(
                    None, self._autoscaler.tick, snapshot)
            except Exception:  # noqa: BLE001 - a failed driver action
                pass           # must not kill the evaluation timer

    # ------------------------------------------------------------------
    # Timers: reaper + status broadcaster
    # ------------------------------------------------------------------
    def _reap_period(self) -> float:
        return min(1.0, max(0.05, min(self.worker_timeout,
                                      self.lease_timeout) / 4.0))

    async def _reaper_loop(self) -> None:
        """Heartbeat liveness + lease deadlines, as a loop timer."""
        while True:
            await asyncio.sleep(self._reap_period())
            now = time.monotonic()
            silent = [w for w in self._workers.values()
                      if now - w.last_seen > self.worker_timeout]
            expired = [lease for lease in self._leases.values()
                       if now > lease.deadline]
            for worker in silent:
                worker.abort()  # wake its reader out of the read
                await self._drop_worker(worker, "heartbeat timeout")
            for lease in expired:
                current = self._leases.get(lease.job.key)
                if current is not lease:
                    continue  # settled or already requeued
                holder = self._workers.get(lease.worker_id)
                if holder is not None:
                    holder.inflight.discard(lease.job.key)
                await self._requeue(lease.job, "lease deadline expired",
                                    exclude_worker=lease.worker_id)
            if silent or expired:
                await self._dispatch()

    async def _broadcast_loop(self) -> None:
        """Push ``status_update`` frames to subscribers at their
        requested periods.  One snapshot is built per tick and shared
        by every due subscriber (a thousand dashboards must not walk
        the broker state a thousand times); a backlogged subscriber is
        unsubscribed -- its reader owns the teardown."""
        while True:
            await asyncio.sleep(BROADCAST_TICK)
            now = time.monotonic()
            due = [c for c in self._clients.values()
                   if c.subscribed and c.alive
                   and now - c.last_push >= c.subscribe_period]
            if not due:
                continue
            snapshot = self.build_status()
            self.snapshots_built += 1
            for client in due:
                client.last_push = now
                if client.try_send({"type": MSG_STATUS_UPDATE,
                                    "status": snapshot}):
                    self.status_updates_sent += 1
                else:
                    client.subscribed = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    async def status_async(self) -> dict[str, Any]:
        """Loop-side status entry point for ``run_coroutine_threadsafe``
        marshalling from the sync facade."""
        return self.build_status()

    def build_status(self) -> dict[str, Any]:
        """JSON-able snapshot (the CLI status line, the status stream,
        the obs bridge and tests read it).

        ``workers``/``clients``/``stats`` keep their original shapes
        (tests index into them); worker entries carry health fields and
        ``campaigns`` adds per-client batch progress with a completion
        rate and ETA measured from the batch's first submit.
        """
        now = time.monotonic()
        campaigns = []
        # A tenant's share is its weight over the active total: what
        # fraction of the grant rounds it is entitled to *right now*.
        active_weight = sum(c.weight for c in self._clients.values()
                            if c.outstanding)
        for c in sorted(self._clients.values(), key=lambda c: c.id):
            settled = c.completed + c.failed
            if not (c.outstanding or settled):
                continue  # idle control connections are not campaigns
            # A settled batch pins its clock: rate/ETA freeze at the
            # values the batch actually achieved instead of decaying
            # with idle time (and a phantom ETA reviving on stale rate
            # state was the bug this fixes).
            end = (c.batch_settled
                   if c.batch_settled and not c.outstanding else now)
            elapsed = max(1e-9, end - c.batch_started)
            rate = settled / elapsed if c.batch_started else 0.0
            campaigns.append({
                "client_id": c.id, "name": c.name,
                "outstanding": len(c.outstanding),
                "completed": c.completed, "failed": c.failed,
                "batches": c.batches,
                "weight": c.weight,
                "share": (c.weight / active_weight
                          if c.outstanding and active_weight > 0
                          else 0.0),
                "rate_per_sec": rate,
                "eta_sec": (len(c.outstanding) / rate
                            if rate > 0 and c.outstanding else None),
            })
        waits = sorted(self._lease_waits)
        status = {
            "address": self.address,
            "pending": self._sched.pending(),
            "leased": len(self._leases),
            "workers": [
                {"id": w.id, "name": w.name, "slots": w.slots,
                 "inflight": len(w.inflight),
                 "retiring": w.retiring,
                 "last_seen_age_sec": max(0.0, now - w.last_seen),
                 "leases_granted": w.leases_granted,
                 "lease_wait_avg_sec": (
                     w.lease_wait_total / w.leases_granted
                     if w.leases_granted else 0.0)}
                for w in sorted(self._workers.values(),
                                key=lambda w: w.id)],
            "clients": len(self._clients),
            "subscribers": sum(1 for c in self._clients.values()
                               if c.subscribed),
            # Workers that can still take leases (a retiring worker is
            # connected but no longer part of the serving fleet).
            "fleet_size": sum(1 for w in self._workers.values()
                              if w.alive and w.slots > 0
                              and not w.retiring),
            "lease_wait_p50_sec": _percentile(waits, 0.5),
            "lease_wait_p95_sec": _percentile(waits, 0.95),
            "campaigns": campaigns,
            "stats": dict(self.stats.__dict__),
        }
        autoscaler = self._autoscaler
        if autoscaler is not None:
            status["autoscale"] = {
                "min": autoscaler.policy.min_workers,
                "max": autoscaler.policy.max_workers,
                "scaled_up": autoscaler.scaled_up,
                "scaled_down": autoscaler.scaled_down,
            }
        return status

    # Facade plumbing: run a coroutine builder from any thread.
    def threadsafe(self, loop: asyncio.AbstractEventLoop,
                   factory: Callable[[], Coroutine]) -> Any:
        return asyncio.run_coroutine_threadsafe(factory(), loop)
