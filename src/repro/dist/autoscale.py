"""Autoscaling for distributed campaign fleets: policy, engine, drivers.

Split on purpose into three small pieces:

- :class:`AutoscalePolicy` is a **pure function** of one coordinator
  status snapshot: ``decide(status) -> delta`` returns how many
  workers the fleet *should* gain (positive) or shed (negative) right
  now, from queue depth, lease-wait percentiles and idle capacity.
  Pure means exhaustively unit-testable as a decision table -- no
  clocks, no sockets, no threads;
- :class:`Autoscaler` wraps a policy with the *stateful* parts --
  per-direction cooldowns so an oscillating queue cannot thrash the
  fleet, and an injectable clock so the hysteresis is testable in
  virtual time -- and applies decisions through a **driver**;
- a driver is anything with ``scale_up(n)`` / ``scale_down(n)``:
  :class:`~repro.dist.cluster.LocalCluster` (in-process fleets for
  tests), :class:`~repro.dist.cluster.SubprocessWorkerFleet` (the
  ``python -m repro.dist coordinator --autoscale min:max`` fleet of
  real worker subprocesses), or your own provisioner.

Scale-down is cooperative, never destructive: the driver asks the
coordinator to *retire* workers, which drain in-flight leases, announce
zero slots and disconnect (see ``worker.py``) -- so a scale-down during
load loses no work.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Protocol

__all__ = ["AutoscalePolicy", "Autoscaler", "ScaleDriver",
           "fleet_size", "parse_autoscale"]


class ScaleDriver(Protocol):
    """What an :class:`Autoscaler` drives."""

    def scale_up(self, n: int) -> None: ...

    def scale_down(self, n: int) -> None: ...


def fleet_size(status: dict[str, Any]) -> int:
    """Workers that can still accept leases: connected, not draining
    (a retiring worker announces ``slots: 0`` and must not count, or
    scale-up toward ``min`` would stall while it drains)."""
    return sum(1 for w in status.get("workers", [])
               if int(w.get("slots", 0)) > 0)


@dataclass(frozen=True)
class AutoscalePolicy:
    """Snapshot -> fleet delta.

    ``backlog_per_worker`` is the queue depth one worker is allowed to
    carry before the policy wants another; ``wait_p95_sec`` is the
    lease-wait tail beyond which the fleet is undersized even when the
    instantaneous queue looks shallow (jobs kept waiting is the symptom
    the paper's capacity argument cares about, not queue length per
    se).  Cooldowns live here too -- they are policy, the
    :class:`Autoscaler` merely enforces them -- with scale-down slower
    than scale-up by default (grow eagerly, shrink reluctantly).
    """

    min_workers: int = 1
    max_workers: int = 8
    backlog_per_worker: float = 2.0
    wait_p95_sec: float = 1.0
    up_cooldown_sec: float = 1.0
    down_cooldown_sec: float = 5.0

    def __post_init__(self) -> None:
        if self.min_workers < 0 or self.max_workers < self.min_workers:
            raise ValueError(
                f"need 0 <= min <= max, got {self.min_workers}:"
                f"{self.max_workers}")
        if self.backlog_per_worker <= 0:
            raise ValueError("backlog_per_worker must be > 0")

    def decide(self, status: dict[str, Any]) -> int:
        """Pure decision: +n to spawn, -n to retire, 0 to hold."""
        fleet = fleet_size(status)
        if fleet < self.min_workers:
            return self.min_workers - fleet
        pending = int(status.get("pending", 0))
        p95 = float(status.get("lease_wait_p95_sec", 0.0) or 0.0)
        if pending > 0 and fleet < self.max_workers:
            # Size the fleet to the backlog; a breached wait tail asks
            # for at least one more even when the queue is shallow.
            want = math.ceil(pending / self.backlog_per_worker)
            if p95 > self.wait_p95_sec:
                want = max(want, fleet + 1)
            want = min(self.max_workers, max(self.min_workers, want))
            if want > fleet:
                return want - fleet
        if pending == 0 and fleet > self.min_workers:
            idle = sum(1 for w in status.get("workers", [])
                       if int(w.get("slots", 0)) > 0
                       and int(w.get("inflight", 0)) == 0)
            if idle > 0:
                return -min(idle, fleet - self.min_workers)
        return 0


class Autoscaler:
    """Apply a policy through a driver, with anti-thrash hysteresis.

    ``tick(status)`` is the broker timer's entry point: it evaluates
    the policy, suppresses decisions still inside their cooldown
    window (a scale-*down* is additionally blocked while a recent
    scale-*up* is still warming, so a spike's trailing edge cannot
    immediately undo its leading edge), and forwards the survivor to
    the driver.  Returns the applied delta (0 when held)."""

    def __init__(self, policy: AutoscalePolicy, driver: ScaleDriver,
                 period: float = 0.5,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy
        self.driver = driver
        self.period = max(0.05, period)
        self._clock = clock
        self._last_up: float | None = None
        self._last_down: float | None = None
        self.ticks = 0
        self.scaled_up = 0
        self.scaled_down = 0

    def tick(self, status: dict[str, Any]) -> int:
        self.ticks += 1
        delta = self.policy.decide(status)
        if delta == 0:
            return 0
        now = self._clock()
        if delta > 0:
            if (self._last_up is not None
                    and now - self._last_up < self.policy.up_cooldown_sec):
                return 0
            self._last_up = now
            self.scaled_up += delta
            self.driver.scale_up(delta)
            return delta
        recent = [t for t in (self._last_up, self._last_down)
                  if t is not None]
        if recent and now - max(recent) < self.policy.down_cooldown_sec:
            return 0
        self._last_down = now
        self.scaled_down += -delta
        self.driver.scale_down(-delta)
        return delta


def parse_autoscale(spec: str) -> tuple[int, int]:
    """Parse the CLI's ``--autoscale MIN:MAX`` argument."""
    lo, sep, hi = spec.partition(":")
    try:
        if not sep:
            raise ValueError
        bounds = (int(lo), int(hi))
    except ValueError:
        raise ValueError(
            f"--autoscale expects MIN:MAX integers, got {spec!r}"
        ) from None
    if bounds[0] < 0 or bounds[1] < bounds[0]:
        raise ValueError(
            f"--autoscale needs 0 <= MIN <= MAX, got {spec!r}")
    return bounds
