"""Client-side distributed campaign runner.

:class:`DistributedCampaignRunner` is the drop-in face of the
subsystem: the same ``run(scenarios)`` / ``map_jobs(fn, jobs)`` calls
as the local :class:`~repro.scenarios.runner.CampaignRunner`, but the
jobs travel to a :class:`~repro.dist.coordinator.Coordinator` and fan
out across however many :class:`~repro.dist.worker.WorkerAgent`
processes are attached to it.

The contracts are preserved deliberately:

- ``run`` ships the *same* module-level job function the local pool
  uses (``repro.scenarios.runner._run_record``) with the same
  ``(run_id, scenario)`` jobs, so the records -- and therefore
  ``summarize()`` output -- are byte-identical to a local run of the
  same grid;
- results stream into the same staged-commit
  :class:`~repro.scenarios.store.ResultsStore` area as they arrive and
  only :meth:`~repro.scenarios.store.ResultsStore.commit_staged` over
  the previous campaign once the grid is complete, so a campaign
  killed mid-flight (client, coordinator or workers) leaves the
  previously committed results intact;
- ``map_jobs`` preserves job order in its return value even though
  results arrive in completion order.

Jobs that permanently fail (a worker died ``max_attempts`` times while
holding them) are *recorded*: ``run`` writes a failed-run record into
the store and lists it on ``CampaignResult.failed`` instead of
pretending the grid shrank; ``map_jobs`` raises
:class:`DistributedJobError` naming every lost job, mirroring how the
local pool propagates a worker exception.
"""

from __future__ import annotations

import io
import pickle
import socket
import sys
import types
from typing import Any, Callable, Sequence

from repro.dist import coordinator as coordinator_mod
from repro.dist.fairshare import validate_weight
from repro.dist.protocol import (
    FEATURE_BATCH,
    FEATURE_SCHED,
    FEATURE_ZLIB,
    ConnectionClosed,
    import_attr,
    loads_payload,
    negotiate_features,
    pack_blob_list,
    recv_message,
    send_message,
    unpack_blob_list,
)
from repro.scenarios.runner import CampaignResult, _run_record, _slug, summarize
from repro.scenarios.spec import Scenario


def _main_module_name() -> str | None:
    """The importable name of the module running as ``__main__``, when
    runpy recorded one (``python -m pkg.mod`` sets
    ``__main__.__spec__.name = "pkg.mod"``); None for plain scripts."""
    spec = getattr(sys.modules.get("__main__"), "__spec__", None)
    name = getattr(spec, "name", None)
    return name if name and name != "__main__" else None


class _PortablePickler(pickle.Pickler):
    """Submit-side pickler that rebinds ``__main__`` globals.

    ``python -m pkg.mod`` executes ``pkg.mod`` under the name
    ``__main__``, so its functions *and classes* pickle as
    ``__main__.<qualname>`` -- references no worker process can resolve
    (their ``__main__`` is the worker CLI), which turns every job into
    a deterministic unpickle failure.  Any class or function whose home
    module is ``__main__`` is shipped as an ``import_attr`` call
    against the importable twin instead.  Only the client's submit path
    pays the per-object hook; result pickling stays stock.
    """

    def reducer_override(self, obj: Any) -> Any:
        if (isinstance(obj, (type, types.FunctionType))
                and getattr(obj, "__module__", None) == "__main__"):
            name = _main_module_name()
            if name is not None:
                try:
                    import_attr(name, obj.__qualname__)
                except Exception:
                    return NotImplemented  # e.g. <locals> -- stock path
                return (import_attr, (name, obj.__qualname__))
        return NotImplemented


def _dumps_portable(value: Any) -> bytes:
    buffer = io.BytesIO()
    _PortablePickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(value)
    return buffer.getvalue()


class DistributedJobError(RuntimeError):
    """One or more jobs were permanently lost (bounded retries burned)."""

    def __init__(self, failures: list[tuple[str, str]]) -> None:
        self.failures = failures
        names = ", ".join(job_id for job_id, _ in failures[:5])
        more = "" if len(failures) <= 5 else f" (+{len(failures) - 5} more)"
        super().__init__(
            f"{len(failures)} job(s) permanently failed: {names}{more}")


class DistributedCampaignRunner:
    """Run campaigns through a coordinator at ``address`` (host:port).

    The connection is dialed lazily on the first call and reused across
    campaigns; ``close()`` (or the context manager) says goodbye.
    ``max_attempts=None`` defers to the coordinator's configured
    default.  ``weight`` declares this tenant's fair-share scheduling
    weight (relative to the other campaigns on the same coordinator: a
    weight-4 tenant earns 4 grant rounds for every 1 a weight-1 tenant
    gets while both are backlogged); it must be a finite number > 0 --
    validated here, at submission time, rather than letting the
    coordinator reject the whole batch later.

    ``warehouse=`` (a ``repro.warehouse`` directory path or open
    warehouse) opts into streaming ingestion: each committed campaign
    is ingested right after ``commit_staged``/``save_summary``, keyed
    under this runner's name as the tenant (override with ``tenant=``).
    Requires ``results_dir``.
    """

    def __init__(self, address: str, results_dir: str | None = None,
                 max_attempts: int | None = None,
                 connect_timeout: float = 10.0, name: str = "",
                 compress: bool = True, weight: float = 1.0,
                 warehouse: Any = None, tenant: str | None = None) -> None:
        self.address = address
        self.results_dir = results_dir
        self.max_attempts = max_attempts
        self.connect_timeout = connect_timeout
        self.name = name or "campaign-client"
        self.compress = compress
        self.weight = validate_weight(weight)
        self.warehouse = warehouse
        self.tenant = tenant if tenant is not None else self.name
        if warehouse is not None and results_dir is None:
            raise ValueError("warehouse= requires results_dir= (the "
                             "warehouse ingests committed stores)")
        self._sock: socket.socket | None = None
        # Negotiated per connection at welcome; plain until then.
        self._tx_compress = False

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    def _connection(self) -> socket.socket:
        if self._sock is None:
            # "batch" and "sched" are always advertised (the
            # coordinator folds result bursts into one result_batch
            # frame toward us, and honours our declared weight); zlib
            # only when compression is on.
            features = ((FEATURE_ZLIB, FEATURE_BATCH, FEATURE_SCHED)
                        if self.compress
                        else (FEATURE_BATCH, FEATURE_SCHED))
            sock = coordinator_mod.connect(
                self.address, role="client", name=self.name,
                timeout=self.connect_timeout, features=features)
            header, _ = recv_message(sock)
            if header.get("type") != "welcome":
                sock.close()
                raise ConnectionError(
                    f"unexpected handshake reply {header.get('type')!r}")
            negotiated = negotiate_features(header.get("features"))
            self._tx_compress = (self.compress
                                 and FEATURE_ZLIB in negotiated)
            self._sock = sock
        return self._sock

    def close(self) -> None:
        sock, self._sock = self._sock, None
        self._tx_compress = False
        if sock is not None:
            try:
                send_message(sock, {"type": "goodbye"})
            except OSError:
                pass
            sock.close()

    def __enter__(self) -> "DistributedCampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def shutdown_coordinator(self) -> None:
        """Ask the coordinator to stop (it tells its workers to exit);
        used by the CLI quickstart and the smoke job to tear a
        localhost cluster down from the submitting side."""
        sock = self._connection()
        send_message(sock, {"type": "shutdown"})
        try:
            recv_message(sock)  # "stopping" ack (best effort)
        except (ConnectionClosed, OSError):
            pass
        self.close()

    def status(self) -> dict[str, Any]:
        """The coordinator's live status snapshot."""
        sock = self._connection()
        send_message(sock, {"type": "status"})
        while True:  # skip any stray frames until the matching reply
            header, _ = recv_message(sock)
            if header.get("type") == "status":
                return header.get("status", {})

    # ------------------------------------------------------------------
    # Fan-out core
    # ------------------------------------------------------------------
    def _submit_and_collect(
            self, fn: Callable[[Any], Any], jobs: Sequence[Any],
            on_raw_result: Callable[[int, bool, Any], None] | None = None,
    ) -> list[tuple[bool, Any, int]]:
        """Ship ``(fn, job)`` pairs, gather ``(ok, value, attempts)`` in
        job order.  ``on_raw_result(index, ok, value)`` streams each
        settled job in completion order."""
        if not jobs:
            return []
        sock = self._connection()
        job_ids = [f"j{i:06d}" for i in range(len(jobs))]
        blobs = [_dumps_portable((fn, job)) for job in jobs]
        header: dict[str, Any] = {"type": "submit", "job_ids": job_ids,
                                  "weight": self.weight}
        if self.max_attempts is not None:
            header["max_attempts"] = self.max_attempts
        # The submit envelope is the fattest client frame (every job
        # pickle in one blob list): the negotiated zlib pass pays for
        # itself most here.
        send_message(sock, header, pack_blob_list(blobs),
                     compress=self._tx_compress)
        outcomes: dict[int, tuple[bool, Any, int]] = {}

        def settle(meta: dict[str, Any], blob: Any) -> None:
            index = int(str(meta["job_id"])[1:])
            ok = bool(meta["ok"])
            value = (loads_payload(blob) if ok
                     else str(meta.get("error", "job failed")))
            outcomes[index] = (ok, value, int(meta.get("attempts", 1)))
            if on_raw_result is not None:
                on_raw_result(index, ok, value)

        while True:
            try:
                reply, payload = recv_message(sock)
            except (ConnectionClosed, OSError) as exc:
                self.close()
                raise ConnectionError(
                    f"lost coordinator at {self.address} with "
                    f"{len(jobs) - len(outcomes)} job(s) outstanding"
                ) from exc
            kind = reply["type"]
            if kind == "result":
                settle(reply, payload)
            elif kind == "result_batch":
                for meta, blob in zip(reply["results"],
                                      unpack_blob_list(payload)):
                    settle(meta, blob)
            elif kind == "done":
                # The coordinator sends "done" strictly after the last
                # result frame for this batch.
                break
            elif kind == "error":
                self.close()
                raise RuntimeError(f"coordinator rejected submission: "
                                   f"{reply.get('error')}")
        assert len(outcomes) == len(jobs)
        return [outcomes[i] for i in range(len(jobs))]

    # ------------------------------------------------------------------
    # CampaignRunner-compatible API
    # ------------------------------------------------------------------
    def map_jobs(self, fn: Callable[[Any], Any], jobs: Sequence[Any],
                 on_result: Callable[[int, Any], None] | None = None,
                 ) -> list[Any]:
        """Distributed twin of ``CampaignRunner.map_jobs``: results come
        back in job order; ``on_result(index, result)`` streams them in
        completion order.  Raises :class:`DistributedJobError` if any
        job was permanently lost."""
        jobs = list(jobs)
        if not jobs:
            return []

        def stream(index: int, ok: bool, value: Any) -> None:
            if ok and on_result is not None:
                on_result(index, value)

        outcomes = self._submit_and_collect(fn, jobs, stream)
        failures = [(f"j{i:06d}", value)
                    for i, (ok, value, _) in enumerate(outcomes) if not ok]
        if failures:
            raise DistributedJobError(failures)
        return [value for _ok, value, _attempts in outcomes]

    def run(self, scenarios: Sequence[Scenario],
            on_result: Callable[[dict[str, Any]], None] | None = None,
            ) -> CampaignResult:
        """Distributed twin of ``CampaignRunner.run``: same job ids,
        same records, same staged-commit store writes, byte-identical
        ``summary`` for a grid that completes cleanly.  Permanently
        failed runs are committed as error records and listed on
        ``CampaignResult.failed``."""
        jobs = [(f"{i:03d}_{_slug(s.name)}_s{s.seed}", s)
                for i, s in enumerate(scenarios)]
        store = None
        if self.results_dir is not None:
            from repro.scenarios.store import ResultsStore

            store = ResultsStore(self.results_dir)
            store.discard_staged()
            store.begin_staging()
        obs_rows: list[dict[str, Any]] = []

        def stream(index: int, ok: bool, value: Any) -> None:
            if ok:
                # Workers with telemetry enabled (REPRO_OBS=1 in their
                # environment) attach a transient "obs" delta; strip it
                # before staging so records stay byte-identical to
                # obs-off runs, and route it to metrics.jsonl instead.
                obs_row = value.pop("obs", None)
                if obs_row is not None:
                    obs_rows.append({"run_id": value["run_id"],
                                     "metrics": obs_row})
                if store is not None:
                    store.stage_run(value["run_id"], value)
                if on_result is not None:
                    on_result(value)

        try:
            outcomes = self._submit_and_collect(_run_record, jobs, stream)
        except BaseException:
            if store is not None:
                store.discard_staged()
            raise
        records: list[dict[str, Any]] = []
        failed: list[dict[str, Any]] = []
        for (run_id, scenario), (ok, value, attempts) in zip(jobs, outcomes):
            if ok:
                records.append(value)
                continue
            failure = {"run_id": run_id, "scenario": scenario.to_dict(),
                       "error": str(value), "attempts": attempts}
            failed.append(failure)
            if store is not None:
                store.stage_run(run_id, failure)
        # Failure records ride into summarize() so failed_runs reflects
        # them; aggregates still cover completed runs only.
        result = CampaignResult(records=records,
                                summary=summarize(records + failed),
                                failed=failed)
        if store is not None:
            store.commit_staged()
            store.save_summary(result.summary)
            store.save_metrics_jsonl(obs_rows)
            result.store_root = str(store.root)
            if self.warehouse is not None:
                from repro.scenarios.runner import _ingest_committed

                _ingest_committed(self.warehouse, store.root, self.tenant)
        return result
