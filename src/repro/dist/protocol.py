"""Length-prefixed JSON/pickle framing for the distributed runner.

Every message on a coordinator/worker/client socket is one frame::

    [4-byte BE total length][4-byte BE header length][header][payload]

The header is a UTF-8 JSON object carrying the message ``type`` plus
small metadata fields (job ids, counters, flags); the payload is an
optional pickle blob for the values that are not JSON-able -- the job
callables and arguments shipped to workers and the result objects
shipped back.  Splitting the two keeps routing decisions cheap (the
coordinator never unpickles a job it merely relays) and keeps the
payload format the same one the local ``CampaignRunner`` pool already
relies on, so anything that runs locally ships over the wire unchanged.

Frames are capped at :data:`MAX_FRAME_BYTES` so a corrupt or hostile
length prefix cannot make a peer allocate unbounded memory.  The
blocking helpers raise :class:`ConnectionClosed` on EOF, which every
loop in the subsystem treats as "the peer is gone" rather than an
error in the stream itself.

Security note: pickle payloads execute code on unpickling, so the
protocol is for trusted clusters (localhost, a lab LAN, your own
fleet) -- the same trust boundary as the local process pool.

Frame types (the ``type`` field of every header) are enumerated as
module constants below.  Clients drive ``submit``/``status``/
``shutdown``/``goodbye`` and may opt into the live status stream with
``subscribe`` (acked by ``subscribed``; pushed frames are
``status_update`` at the subscriber's requested period until
``unsubscribe`` or disconnect).  Workers speak ``heartbeat``/``result``
and receive ``job``/``shutdown``.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
from typing import Any

MAX_FRAME_BYTES = 256 * 1024 * 1024
"""Upper bound on one frame; a length prefix beyond this is corruption."""

DEFAULT_PORT = 7461
"""The coordinator's default TCP port (single source: the CLI, the
broker and address parsing all import it from here)."""

# Frame types, client-driven ...
MSG_HELLO = "hello"
MSG_SUBMIT = "submit"
MSG_STATUS = "status"
MSG_SUBSCRIBE = "subscribe"
MSG_UNSUBSCRIBE = "unsubscribe"
MSG_SHUTDOWN = "shutdown"
MSG_GOODBYE = "goodbye"
# ... coordinator-driven ...
MSG_WELCOME = "welcome"
MSG_SUBSCRIBED = "subscribed"
MSG_STATUS_UPDATE = "status_update"
MSG_JOB = "job"
MSG_RESULT = "result"
MSG_DONE = "done"
MSG_STOPPING = "stopping"
MSG_ERROR = "error"
# ... worker-driven.
MSG_HEARTBEAT = "heartbeat"

_LEN = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed frame (bad lengths, header not JSON)."""


class ConnectionClosed(ConnectionError):
    """The peer closed the socket (EOF mid-frame or between frames)."""


def pack_message(header: dict[str, Any], payload: bytes | None = None,
                 ) -> bytes:
    """One wire frame for ``header`` (+ optional pickle ``payload``)."""
    head = json.dumps(header, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    body_len = _LEN.size + len(head) + (len(payload or b""))
    if body_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {body_len} bytes exceeds cap")
    parts = [_LEN.pack(body_len), _LEN.pack(len(head)), head]
    if payload:
        parts.append(payload)
    return b"".join(parts)


def send_message(sock: socket.socket, header: dict[str, Any],
                 payload: bytes | None = None) -> None:
    sock.sendall(pack_message(header, payload))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`ConnectionClosed`."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(f"peer closed with {remaining} of "
                                   f"{n} frame bytes outstanding")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> tuple[dict[str, Any], bytes]:
    """Next ``(header, payload)`` frame off ``sock`` (blocking)."""
    body_len = _LEN.unpack(_recv_exact(sock, _LEN.size))[0]
    if body_len < _LEN.size or body_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"implausible frame length {body_len}")
    body = _recv_exact(sock, body_len)
    head_len = _LEN.unpack(body[:_LEN.size])[0]
    if _LEN.size + head_len > body_len:
        raise ProtocolError(f"header length {head_len} exceeds frame")
    try:
        header = json.loads(body[_LEN.size:_LEN.size + head_len])
    except ValueError as exc:
        raise ProtocolError(f"header is not JSON: {exc}") from exc
    if not isinstance(header, dict) or "type" not in header:
        raise ProtocolError("header must be an object with a 'type'")
    return header, body[_LEN.size + head_len:]


def dumps_payload(value: Any) -> bytes:
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def loads_payload(payload: bytes) -> Any:
    return pickle.loads(payload)


def pack_blob_list(blobs: list[bytes]) -> bytes:
    """Concatenate opaque blobs with 4-byte length prefixes.  Submit
    batches use this instead of pickling a list, so the *broker* can
    split the envelope without ever unpickling client data -- only the
    workers (which execute the jobs anyway) unpickle the blobs."""
    parts: list[bytes] = []
    for blob in blobs:
        parts.append(_LEN.pack(len(blob)))
        parts.append(blob)
    return b"".join(parts)


def unpack_blob_list(data: bytes) -> list[bytes]:
    blobs: list[bytes] = []
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _LEN.size > total:
            raise ProtocolError("truncated blob-list envelope")
        length = _LEN.unpack_from(data, offset)[0]
        offset += _LEN.size
        if offset + length > total:
            raise ProtocolError("blob length exceeds envelope")
        blobs.append(data[offset:offset + length])
        offset += length
    return blobs


def parse_address(address: str, default_port: int = DEFAULT_PORT,
                  ) -> tuple[str, int]:
    """``"host:port"`` / ``"host"`` / ``":port"`` -> ``(host, port)``.

    IPv6 literals use bracket syntax (``[::1]:7461``); a bare literal
    with multiple colons (``::1``) is taken as host-only.
    """
    if address.startswith("["):
        host, bracket, rest = address.partition("]")
        host = host[1:]
        if not bracket:
            raise ValueError(f"unterminated '[' in address {address!r}")
        if rest.startswith(":"):
            return (host or "127.0.0.1"), int(rest[1:])
        return (host or "127.0.0.1"), default_port
    if address.count(":") > 1:
        return address, default_port  # bare IPv6 literal, no port
    host, sep, port = address.rpartition(":")
    if not sep:
        return (address or "127.0.0.1"), default_port
    return (host or "127.0.0.1"), int(port)
