"""Length-prefixed JSON/pickle framing for the distributed runner.

Every message on a coordinator/worker/client socket is one frame::

    [4-byte BE total length][4-byte BE header length][header][payload]

The header is a UTF-8 JSON object carrying the message ``type`` plus
small metadata fields (job ids, counters, flags); the payload is an
optional pickle blob for the values that are not JSON-able -- the job
callables and arguments shipped to workers and the result objects
shipped back.  Splitting the two keeps routing decisions cheap (the
coordinator never unpickles a job it merely relays) and keeps the
payload format the same one the local ``CampaignRunner`` pool already
relies on, so anything that runs locally ships over the wire unchanged.

**Compression.**  The top bit of the total-length prefix
(:data:`COMPRESS_FLAG`) marks a frame whose body (header-length word,
header and payload together) is one zlib stream; the prefix then gives
the *compressed* length.  Receivers always accept both forms -- the
flag is all the framing a decoder needs -- so compression is purely a
sender-side decision.  Senders only compress toward peers that
advertised the ``"zlib"`` feature in the hello/welcome handshake (see
:func:`negotiate_features`), which is what lets an old or deliberately
uncompressed peer interoperate with a compression-enabled coordinator.
Small or incompressible bodies ship raw even after negotiation: the
flag is per-frame, not per-connection.

Frames are capped at :data:`MAX_FRAME_BYTES` (before *and* after
decompression) so a corrupt or hostile length prefix -- or a zlib bomb
-- cannot make a peer allocate unbounded memory.  The blocking helpers
raise :class:`ConnectionClosed` on EOF, which every loop in the
subsystem treats as "the peer is gone" rather than an error in the
stream itself.  :func:`_recv_exact` fills one preallocated buffer via
``recv_into`` (no per-chunk copies, no join) and the parsed payload is
returned as a :class:`memoryview` over that buffer, so a relay -- the
coordinator forwarding job blobs it never unpickles -- touches each
byte exactly once.

Security note: pickle payloads execute code on unpickling, so the
protocol is for trusted clusters (localhost, a lab LAN, your own
fleet) -- the same trust boundary as the local process pool.

Frame types (the ``type`` field of every header) are enumerated as
module constants below.  Clients drive ``submit``/``status``/
``shutdown``/``goodbye`` and may opt into the live status stream with
``subscribe`` (acked by ``subscribed``; pushed frames are
``status_update`` at the subscriber's requested period until
``unsubscribe`` or disconnect).  Workers speak ``heartbeat``/``result``
and receive ``job``/``shutdown``; peers that negotiated the ``"batch"``
feature additionally exchange ``job_batch``/``result_batch`` frames
that carry N leases or N results in one syscall.
"""

from __future__ import annotations

import asyncio
import importlib
import json
import pickle
import socket
import struct
import zlib
from typing import Any, Callable, Iterable, Sequence

MAX_FRAME_BYTES = 256 * 1024 * 1024
"""Upper bound on one frame body, compressed or decompressed; a length
prefix beyond this is corruption, a zlib stream expanding past it is a
bomb."""

COMPRESS_FLAG = 0x8000_0000
"""Top bit of the total-length prefix: the body is one zlib stream.
``MAX_FRAME_BYTES`` is far below 2**31, so the bit is always free."""

COMPRESS_MIN_BYTES = 4096
"""Bodies below this ship raw even on a zlib-negotiated connection.
The floor sits well above the deflate break-even on purpose: the
frame-relay meter showed level-1 zlib costing ~8% end-to-end on small
batched result frames (localhost, where bytes are nearly free), while
the payloads compression exists for -- wide-grid record pickles, whole
submit envelopes -- run tens of KB to MB, far past this floor."""

COMPRESS_LEVEL = 1
"""zlib level: the wire is usually localhost/LAN, so favour speed; the
wide-grid record pickles (dicts of floats with repeated keys) still
shrink 2-4x at level 1."""

BATCH_BYTES_BUDGET = MAX_FRAME_BYTES // 2
"""Soft cap on the payload bytes coalesced into one batched frame.
Each entry in a job/result batch was individually sendable, but N of
them concatenated can exceed the :data:`MAX_FRAME_BYTES` cap
:func:`pack_message` enforces -- so batch builders chunk with
:func:`split_batch` at half the cap, leaving the other half as
headroom for per-entry metadata headers."""


def split_batch(items: Sequence[Any], size_of: Callable[[Any], int],
                budget: int | None = None) -> list[list[Any]]:
    """Greedily chunk ``items`` so each chunk's cumulative ``size_of``
    stays within ``budget`` (default :data:`BATCH_BYTES_BUDGET`,
    resolved at call time so tests can shrink it).  Order is preserved
    and every chunk holds at least one item -- a single item larger
    than the budget ships alone, exactly as it would unbatched."""
    if budget is None:
        budget = BATCH_BYTES_BUDGET
    chunks: list[list[Any]] = []
    current: list[Any] = []
    current_bytes = 0
    for item in items:
        size = size_of(item)
        if current and current_bytes + size > budget:
            chunks.append(current)
            current, current_bytes = [], 0
        current.append(item)
        current_bytes += size
    if current:
        chunks.append(current)
    return chunks


DEFAULT_PORT = 7461
"""The coordinator's default TCP port (single source: the CLI, the
broker and address parsing all import it from here)."""

# Connection features a peer may advertise in its hello (and the
# coordinator acks in its welcome): the negotiated set is the
# intersection, so either side can unilaterally decline.
FEATURE_ZLIB = "zlib"
FEATURE_BATCH = "batch"
# Fair-share scheduling: a client that negotiated "sched" may declare
# a per-submit ``weight`` (its share of the grant rounds relative to
# other tenants).  Clients without it interoperate as weight-1 tenants
# -- the old strict-FIFO behaviour degrades into the common DRR lane.
FEATURE_SCHED = "sched"
SUPPORTED_FEATURES = frozenset({FEATURE_ZLIB, FEATURE_BATCH,
                                FEATURE_SCHED})

# Frame types, client-driven ...
MSG_HELLO = "hello"
MSG_SUBMIT = "submit"
MSG_STATUS = "status"
MSG_SUBSCRIBE = "subscribe"
MSG_UNSUBSCRIBE = "unsubscribe"
MSG_SHUTDOWN = "shutdown"
MSG_GOODBYE = "goodbye"
# ... coordinator-driven ...
MSG_WELCOME = "welcome"
MSG_SUBSCRIBED = "subscribed"
MSG_STATUS_UPDATE = "status_update"
MSG_JOB = "job"
MSG_JOB_BATCH = "job_batch"
MSG_RESULT = "result"
MSG_DONE = "done"
MSG_STOPPING = "stopping"
MSG_ERROR = "error"
# "retire" asks a worker to drain and leave (the autoscaler's
# scale-down path): the worker finishes its in-flight leases,
# announces zero slots, then says goodbye -- so shrinking the fleet
# never requeues work.
MSG_RETIRE = "retire"
# ... worker-driven.
MSG_HEARTBEAT = "heartbeat"
MSG_RESULT_BATCH = "result_batch"
# "slots" re-announces a worker's lease capacity mid-connection (a
# retiring worker drops to 0; a future elastic worker could grow).
MSG_SLOTS = "slots"

_LEN = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed frame (bad lengths, header not JSON, bad zlib)."""


class ConnectionClosed(ConnectionError):
    """The peer closed the socket (EOF mid-frame or between frames)."""


def negotiate_features(advertised: Iterable[str] | None) -> set[str]:
    """The feature set shared with a peer that advertised ``advertised``
    (absent/None -- an old peer -- negotiates the empty set)."""
    if not advertised:
        return set()
    return {str(f) for f in advertised} & SUPPORTED_FEATURES


def pack_message(header: dict[str, Any], payload: bytes | None = None,
                 compress: bool = False) -> bytes:
    """One wire frame for ``header`` (+ optional pickle ``payload``).

    ``compress=True`` is permission, not a command: the body is
    deflated only when it is big enough (:data:`COMPRESS_MIN_BYTES`)
    and actually shrinks; otherwise the raw form ships.  Only pass it
    for peers that negotiated :data:`FEATURE_ZLIB`.
    """
    head = json.dumps(header, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    payload_len = len(payload) if payload is not None else 0
    body_len = _LEN.size + len(head) + payload_len
    if body_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {body_len} bytes exceeds cap")
    if compress and body_len >= COMPRESS_MIN_BYTES:
        if payload:
            raw = b"".join((_LEN.pack(len(head)), head, payload))
        else:
            raw = _LEN.pack(len(head)) + head
        deflated = zlib.compress(raw, COMPRESS_LEVEL)
        if len(deflated) < len(raw):
            return _LEN.pack(len(deflated) | COMPRESS_FLAG) + deflated
        return _LEN.pack(body_len) + raw
    parts = [_LEN.pack(body_len), _LEN.pack(len(head)), head]
    if payload:
        parts.append(payload)
    return b"".join(parts)


def send_message(sock: socket.socket, header: dict[str, Any],
                 payload: bytes | None = None,
                 compress: bool = False) -> None:
    sock.sendall(pack_message(header, payload, compress=compress))


def _recv_exact(sock: socket.socket, n: int) -> memoryview:
    """Read exactly ``n`` bytes into one preallocated buffer via
    ``recv_into`` (no per-chunk ``bytes`` objects, no final join) or
    raise :class:`ConnectionClosed`.  Returns a memoryview so callers
    can slice without copying."""
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        received = sock.recv_into(view[got:])
        if not received:
            raise ConnectionClosed(f"peer closed with {n - got} of "
                                   f"{n} frame bytes outstanding")
        got += received
    return view


def _inflate_body(body: memoryview | bytes) -> memoryview:
    """Decompress one frame body with the cap enforced mid-stream, so
    a zlib bomb fails before it allocates."""
    stream = zlib.decompressobj()
    try:
        raw = stream.decompress(body, MAX_FRAME_BYTES + 1)
    except zlib.error as exc:
        raise ProtocolError(f"bad compressed frame: {exc}") from exc
    if len(raw) > MAX_FRAME_BYTES or stream.unconsumed_tail:
        raise ProtocolError("compressed frame inflates past the cap")
    if not stream.eof:
        raise ProtocolError("truncated compressed frame body")
    return memoryview(raw)


def _parse_body(body: memoryview,
                ) -> tuple[dict[str, Any], memoryview]:
    head_len = _LEN.unpack_from(body)[0]
    if _LEN.size + head_len > len(body):
        raise ProtocolError(f"header length {head_len} exceeds frame")
    try:
        header = json.loads(bytes(body[_LEN.size:_LEN.size + head_len]))
    except ValueError as exc:
        raise ProtocolError(f"header is not JSON: {exc}") from exc
    if not isinstance(header, dict) or "type" not in header:
        raise ProtocolError("header must be an object with a 'type'")
    return header, body[_LEN.size + head_len:]


def _check_prefix(prefix_word: int) -> tuple[int, bool]:
    """Split a length prefix into ``(body_len, compressed)`` with the
    plausibility guards shared by the sync and async receive paths."""
    compressed = bool(prefix_word & COMPRESS_FLAG)
    body_len = prefix_word & ~COMPRESS_FLAG
    floor = 1 if compressed else _LEN.size
    if body_len < floor or body_len > MAX_FRAME_BYTES:
        raise ProtocolError(f"implausible frame length {prefix_word}")
    return body_len, compressed


def recv_message(sock: socket.socket,
                 ) -> tuple[dict[str, Any], memoryview]:
    """Next ``(header, payload)`` frame off ``sock`` (blocking).

    The payload is a :class:`memoryview` over the receive buffer --
    equality with ``bytes`` and ``pickle.loads`` work unchanged; call
    ``bytes(payload)`` only where a real copy is required (e.g. before
    pickling the blob into a process pool).
    """
    body_len, compressed = _check_prefix(
        _LEN.unpack(_recv_exact(sock, _LEN.size))[0])
    body = _recv_exact(sock, body_len)
    if compressed:
        body = _inflate_body(body)
    return _parse_body(body)


async def recv_message_async(reader: asyncio.StreamReader,
                             ) -> tuple[dict[str, Any], memoryview]:
    """The :func:`recv_message` twin for asyncio streams (the broker's
    per-peer reader tasks); same parsing, same error taxonomy."""
    try:
        prefix = await reader.readexactly(_LEN.size)
        body_len, compressed = _check_prefix(_LEN.unpack(prefix)[0])
        body = memoryview(await reader.readexactly(body_len))
    except asyncio.IncompleteReadError as exc:
        raise ConnectionClosed(
            f"peer closed with {len(exc.partial)} partial frame bytes"
        ) from exc
    if compressed:
        body = _inflate_body(body)
    return _parse_body(body)


def import_attr(module: str, qualname: str) -> Any:
    """Resolve ``module.qualname`` by import -- the unpickle half of the
    client's ``__main__``-rebinding submit pickler (see
    ``runner._dumps_portable``); lives here so every worker can import
    it."""
    obj: Any = importlib.import_module(module)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def dumps_payload(value: Any) -> bytes:
    return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def loads_payload(payload: bytes | memoryview) -> Any:
    return pickle.loads(payload)


def pack_blob_list(blobs: Sequence[bytes | memoryview]) -> bytes:
    """Concatenate opaque blobs with 4-byte length prefixes.  Submit
    batches (and the batched job/result frames) use this instead of
    pickling a list, so the *broker* can split the envelope without
    ever unpickling client data -- only the workers (which execute the
    jobs anyway) unpickle the blobs.  Accepts memoryviews, so a relay
    repacks received blobs without copying them first."""
    parts: list[bytes | memoryview] = []
    for blob in blobs:
        parts.append(_LEN.pack(len(blob)))
        parts.append(blob)
    return b"".join(parts)


def unpack_blob_list(data: bytes | memoryview) -> list[memoryview]:
    """Split a blob-list envelope into zero-copy memoryview slices."""
    view = memoryview(data) if not isinstance(data, memoryview) else data
    blobs: list[memoryview] = []
    offset = 0
    total = len(view)
    while offset < total:
        if offset + _LEN.size > total:
            raise ProtocolError("truncated blob-list envelope")
        length = _LEN.unpack_from(view, offset)[0]
        offset += _LEN.size
        if offset + length > total:
            raise ProtocolError("blob length exceeds envelope")
        blobs.append(view[offset:offset + length])
        offset += length
    return blobs


def parse_address(address: str, default_port: int = DEFAULT_PORT,
                  ) -> tuple[str, int]:
    """``"host:port"`` / ``"host"`` / ``":port"`` -> ``(host, port)``.

    IPv6 literals use bracket syntax (``[::1]:7461``); a bare literal
    with multiple colons (``::1``) is taken as host-only.
    """
    if address.startswith("["):
        host, bracket, rest = address.partition("]")
        host = host[1:]
        if not bracket:
            raise ValueError(f"unterminated '[' in address {address!r}")
        if rest.startswith(":"):
            return (host or "127.0.0.1"), int(rest[1:])
        return (host or "127.0.0.1"), default_port
    if address.count(":") > 1:
        return address, default_port  # bare IPv6 literal, no port
    host, sep, port = address.rpartition(":")
    if not sep:
        return (address or "127.0.0.1"), default_port
    return (host or "127.0.0.1"), int(port)
