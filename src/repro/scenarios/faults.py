"""Composable fault primitives.

Each primitive is a frozen dataclass describing one thing that goes wrong
(or right again) at a point in simulated time, with an ``apply(rig)`` hook
the :class:`~repro.scenarios.injector.FaultInjector` fires as an engine
event.  Primitives target a specific layer of the stack:

=====================  ==================================================
:class:`NodeCrash`     RTOS/hardware -- kernel halt, radio off
:class:`NodeRecover`   RTOS/hardware -- reboot a crashed node
:class:`LinkDegrade`   medium -- multiply per-frame survival on links
:class:`BabblingInterferer`  MAC/EVM -- forged data frames on the channel
:class:`ClockDrift`    time sync -- crystal error step change
:class:`BatteryDrain`  hardware -- instant charge loss, optional brown-out
:class:`CapsuleRetune` EVM -- remote parametric poke (setpoints, gains)
:class:`CapsuleUpgrade`  EVM -- over-the-air control-law dissemination
:class:`OutputWedge`   EVM -- wedge a task's published output (Fig. 6 T1)
=====================  ==================================================

Being plain dataclasses they pickle cleanly, so whole fault schedules ship
to :class:`~repro.scenarios.runner.CampaignRunner` worker processes, and
``dataclasses.asdict`` serializes them into the JSON results store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.net.link_quality import DegradedLinks
from repro.net.packet import BROADCAST, Packet
from repro.sim.clock import MS, SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.hil import HilRig


@dataclass(frozen=True)
class Fault:
    """Base class; subclasses override :meth:`apply`."""

    @property
    def kind(self) -> str:
        return type(self).__name__

    def apply(self, rig: "HilRig") -> None:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Node-level faults (RTOS / hardware layers)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NodeCrash(Fault):
    """Hard-fail one node: scheduler halted, radio off, queues dead."""

    node: str

    def apply(self, rig: "HilRig") -> None:
        rig.kernels[self.node].crash()


@dataclass(frozen=True)
class NodeRecover(Fault):
    """Reboot a crashed node; it rejoins the TDMA schedule and the VC."""

    node: str

    def apply(self, rig: "HilRig") -> None:
        rig.kernels[self.node].restart()


@dataclass(frozen=True)
class ClockDrift(Fault):
    """Step one node's crystal error to ``drift_ppm`` (thermal runaway,
    aging).  Between AM sync pulses its local clock now wanders faster."""

    node: str
    drift_ppm: float

    def apply(self, rig: "HilRig") -> None:
        rig.nodes[self.node].clock.drift_ppm = self.drift_ppm


@dataclass(frozen=True)
class BatteryDrain(Fault):
    """Instantly consume ``fraction`` of a node's rated battery capacity.

    With ``crash_on_depletion`` (default), a drain that empties the cell
    browns the node out -- the cascading-battery-death stock scenario
    chains these to walk through the controller replicas.
    """

    node: str
    fraction: float
    crash_on_depletion: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(
                f"fraction must be in [0,1], got {self.fraction}")

    def apply(self, rig: "HilRig") -> None:
        battery = rig.nodes[self.node].battery
        battery.drain_fraction(self.fraction)
        if self.crash_on_depletion and battery.depleted:
            rig.kernels[self.node].crash()


# ----------------------------------------------------------------------
# Channel-level faults (medium layer)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkDegrade(Fault):
    """Multiply per-frame survival by ``prr`` on ``links`` (all if empty).

    ``prr=0.0`` on the links around one node is a network partition;
    ``prr=0.9`` everywhere is the paper's lossy-plant-floor condition.
    A ``duration_sec`` window reverts automatically; windows may overlap
    and revert in any order.
    """

    prr: float
    links: tuple[tuple[str, str], ...] = ()
    duration_sec: float | None = None

    def __post_init__(self) -> None:
        # Fail at scenario declaration, not mid-run inside the engine.
        if not 0.0 <= self.prr <= 1.0:
            raise ValueError(f"PRR must be in [0,1], got {self.prr}")
        if self.duration_sec is not None and self.duration_sec <= 0:
            raise ValueError(
                f"duration must be positive, got {self.duration_sec}")

    def apply(self, rig: "HilRig") -> None:
        wrapper = DegradedLinks(rig.medium.link_model, self.prr,
                                self.links or None)
        rig.medium.link_model = wrapper
        if self.duration_sec is not None:
            def revert() -> None:
                wrapper.active = False
            rig.engine.post(int(self.duration_sec * SEC), revert)


@dataclass(frozen=True)
class BabblingInterferer(Fault):
    """A compromised node periodically forges ``evm.data`` frames claiming
    to be ``task``'s output toward ``consumer`` -- the operation switch at
    the receiver is the line of defense (paper's OS security argument)."""

    node: str
    task: str
    consumer: str
    value: float = 99.0
    slot: int = 1  # SLOT_OUTPUT in the standard slot layout
    period_ms: int = 500
    duration_sec: float | None = None

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise ValueError(
                f"period must be positive, got {self.period_ms} ms")
        if self.duration_sec is not None and self.duration_sec <= 0:
            raise ValueError(
                f"duration must be positive, got {self.duration_sec}")

    def apply(self, rig: "HilRig") -> None:
        kernel = rig.kernels[self.node]
        stop_at = (rig.engine.now + int(self.duration_sec * SEC)
                   if self.duration_sec is not None else None)

        def babble() -> None:
            if kernel.crashed:
                return
            if stop_at is not None and rig.engine.now >= stop_at:
                return
            packet = Packet(src=self.node, dst=BROADCAST, kind="evm.data",
                            payload={
                                "task": self.task,
                                "consumer": self.consumer,
                                "values": [(self.slot, 0, self.value)],
                                "sent_at": rig.engine.now,
                                "epoch": 0,
                            }, size_bytes=20)
            kernel.send_packet("EVM", packet)
            rig.engine.post(self.period_ms * MS, babble)

        babble()


# ----------------------------------------------------------------------
# EVM-level faults and interventions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OutputWedge(Fault):
    """Wedge a task's published output at ``value`` (the Fig. 6(b) T1
    fault).  ``node=None`` targets whichever replica is currently ACTIVE."""

    task: str
    value: float
    node: str | None = None
    slot: int = 1  # SLOT_OUTPUT

    def apply(self, rig: "HilRig") -> None:
        node = self.node
        if node is None:
            views = [runtime.task_primaries[self.task]
                     for runtime in rig.runtimes.values()
                     if self.task in runtime.task_primaries]
            if not views:
                raise ValueError(
                    f"no runtime knows a primary for task {self.task!r}; "
                    f"cannot resolve OutputWedge target")
            # Views can diverge under loss; trust the highest epoch (the
            # most recent arbitration any node has heard of).
            node, _epoch = max(views, key=lambda view: view[1])
        rig.runtimes[node].inject_output_fault(self.task, self.slot,
                                               self.value)


@dataclass(frozen=True)
class CapsuleRetune(Fault):
    """Remote parametric control: poke one memory slot of every hosted
    instance of ``task`` (setpoint moves, gain retunes) from ``from_node``."""

    task: str
    slot: int
    value: float
    from_node: str = "gw"

    def apply(self, rig: "HilRig") -> None:
        rig.runtimes[self.from_node].poke_remote(self.task, self.slot,
                                                 self.value)


@dataclass(frozen=True)
class CapsuleUpgrade(Fault):
    """Runtime reprogramming: recompile the rig's control law as a new
    capsule version and disseminate it over the air from ``from_node``."""

    version: int
    program_name: str = "lts_ctrl_law"
    from_node: str = "gw"

    def apply(self, rig: "HilRig") -> None:
        from repro.evm.capsule import Capsule

        program = rig.control_config.compile(self.program_name)
        capsule = Capsule.from_program(program, version=self.version)
        rig.runtimes[self.from_node].install_capsule(capsule,
                                                     disseminate=True)
