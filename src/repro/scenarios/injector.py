"""Applies a scenario's fault schedule to a live rig.

The injector turns each :class:`~repro.scenarios.spec.ScheduledFault` into
a discrete-event-engine callback, records every application in the rig's
trace (category ``scenario.fault``), and keeps an applied-faults log the
metrics collector reads for failover-latency measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.scenarios.spec import Scenario, ScheduledFault
from repro.sim.clock import SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.hil import HilRig


@dataclass(frozen=True)
class AppliedFault:
    """One fault as it actually fired."""

    time_ticks: int
    kind: str
    detail: str


class FaultInjector:
    """Schedules and fires a scenario's faults against one rig."""

    def __init__(self, rig: "HilRig", scenario: Scenario) -> None:
        self.rig = rig
        self.scenario = scenario
        self.applied: list[AppliedFault] = []
        self._armed = False

    def arm(self) -> None:
        """Schedule every fault as an engine event (idempotent)."""
        if self._armed:
            return
        self._armed = True
        for item in self.scenario.sorted_schedule():
            self.rig.engine.post(int(item.at_sec * SEC),
                                 self._fire, item)

    def _fire(self, item: ScheduledFault) -> None:
        item.fault.apply(self.rig)
        now = self.rig.engine.now
        self.applied.append(AppliedFault(now, item.fault.kind,
                                         repr(item.fault)))
        self.rig.trace.record(now, "scenario.fault", "injector",
                              kind=item.fault.kind, detail=repr(item.fault))

    def applied_times_sec(self) -> list[float]:
        return [entry.time_ticks / SEC for entry in self.applied]
