"""Declarative scenario specs.

A :class:`Scenario` fully determines one run: the HIL rig configuration
(topology/workload/MAC knobs via :class:`~repro.experiments.hil.HilConfig`),
the master ``seed``, how long to run, and a timed **fault schedule** of
:class:`~repro.scenarios.faults.Fault` primitives.  Scenarios are plain
data -- picklable for the campaign runner's worker processes and
JSON-serializable for the results store -- and every stochastic draw in a
run derives from ``seed``, so a scenario replayed with the same seed is
bit-identical.

Builder style::

    scenario = (Scenario("primary-crash", duration_sec=60.0)
                .at(20.0, NodeCrash("ctrl_a"))
                .at(40.0, NodeRecover("ctrl_a")))

Grids for campaigns::

    specs = sweep([scenario], seeds=range(5),
                  params={"link_prr_...": [...]})
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Sequence

from repro.experiments.hil import HilConfig
from repro.scenarios.faults import Fault


@dataclass(frozen=True)
class ScheduledFault:
    """One fault primitive pinned to a simulated-time instant."""

    at_sec: float
    fault: Fault


@dataclass
class Scenario:
    """Everything needed to reproduce one run of the HIL stack."""

    name: str
    hil: HilConfig = field(default_factory=HilConfig)
    seed: int = 1
    duration_sec: float = 60.0
    schedule: list[ScheduledFault] = field(default_factory=list)
    sample_period_sec: float = 1.0
    description: str = ""
    tags: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def at(self, at_sec: float, *faults: Fault) -> "Scenario":
        """Append fault(s) at ``at_sec``; returns ``self`` for chaining."""
        if at_sec < 0:
            raise ValueError(f"fault time must be >= 0, got {at_sec}")
        for fault in faults:
            self.schedule.append(ScheduledFault(at_sec, fault))
        return self

    def with_seed(self, seed: int) -> "Scenario":
        """An independent copy of this scenario re-seeded to ``seed``."""
        return replace(self, seed=seed, schedule=list(self.schedule))

    def with_params(self, **hil_overrides: Any) -> "Scenario":
        """A copy with :class:`HilConfig` fields overridden."""
        return replace(self, hil=replace(self.hil, **hil_overrides),
                       schedule=list(self.schedule))

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def build_config(self) -> HilConfig:
        """The rig config for this run: the scenario seed wins."""
        return replace(self.hil, seed=self.seed)

    def sorted_schedule(self) -> list[ScheduledFault]:
        return sorted(self.schedule, key=lambda item: item.at_sec)

    def first_fault_sec(self) -> float | None:
        return min((item.at_sec for item in self.schedule), default=None)

    # ------------------------------------------------------------------
    # Serialization (results store)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "duration_sec": self.duration_sec,
            "sample_period_sec": self.sample_period_sec,
            "description": self.description,
            "tags": list(self.tags),
            "hil": dataclasses.asdict(self.hil),
            "schedule": [
                {"at_sec": item.at_sec, "kind": item.fault.kind,
                 **dataclasses.asdict(item.fault)}
                for item in self.sorted_schedule()
            ],
        }


def sweep(scenarios: Sequence[Scenario], seeds: Iterable[int],
          params: dict[str, Iterable[Any]] | None = None) -> list[Scenario]:
    """Expand a scenario x seed x parameter grid into concrete scenarios.

    ``params`` maps :class:`HilConfig` field names to value lists; the
    cross product of all value lists is applied to every (scenario, seed)
    pair.  Parameterized variants get a ``name`` suffix recording the
    parameter values, so results aggregate per grid cell.
    """
    cells: list[dict[str, Any]] = [{}]
    for key, values in (params or {}).items():
        cells = [dict(cell, **{key: value})
                 for cell in cells for value in values]
    expanded: list[Scenario] = []
    for scenario in scenarios:
        for cell in cells:
            variant = scenario.with_params(**cell) if cell else scenario
            if cell:
                suffix = ",".join(f"{k}={v}" for k, v in sorted(cell.items()))
                variant = replace(variant, name=f"{scenario.name}[{suffix}]",
                                  schedule=list(variant.schedule))
            for seed in seeds:
                expanded.append(variant.with_seed(seed))
    return expanded
