"""JSON persistence for campaign results.

Layout under the store root::

    <root>/
      campaign.json            # campaign-level manifest + summary
      runs/
        <run_id>.json          # one record per run: spec + metrics
      runs.staging/            # in-flight campaign being streamed

Each run record carries the full scenario spec (including the seed), so
any run can be reproduced later from its JSON alone.

A streaming campaign writes each record into ``runs.staging/`` as it
arrives and *commits* the staged set over ``runs/`` only once the whole
grid finished -- a failed or interrupted campaign leaves the previously
persisted campaign (runs + summary) fully intact.  The commit itself is
a directory-rename swap through ``runs.old/`` (recovered on open), so
even a crash mid-commit leaves one whole campaign's records, never a
mix; only the window between the swap and ``save_summary`` can pair new
runs with the previous summary.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import Any


class ResultsStore:
    """Directory-backed store of per-run records and a campaign summary."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.runs_dir = self.root / "runs"
        self._staging_dir = self.root / "runs.staging"
        self._old_dir = self.root / "runs.old"
        # Recover from a commit interrupted between its two renames:
        # runs/ missing with runs.old/ present means the previous
        # campaign was parked but the staged one never swapped in --
        # roll back.  Both present means the swap finished and only the
        # cleanup was lost -- finish it.
        if self._old_dir.exists():
            if not self.runs_dir.exists():
                self._old_dir.rename(self.runs_dir)
            else:
                shutil.rmtree(self._old_dir)
        self.runs_dir.mkdir(parents=True, exist_ok=True)

    def stage_run(self, run_id: str, record: dict[str, Any]) -> Path:
        """Stream one record into the staging area (see module docs)."""
        self._staging_dir.mkdir(parents=True, exist_ok=True)
        path = self._staging_dir / f"{run_id}.json"
        path.write_text(json.dumps(record, indent=2, sort_keys=True))
        return path

    def commit_staged(self) -> int:
        """Promote the staged campaign: the previous run records are
        dropped and every staged record moves into ``runs/``.  Returns
        the number of committed records.

        The swap is two directory renames (park ``runs/``, promote
        ``runs.staging/``), so a crash at any point leaves either the
        old or the new campaign whole -- never a half-populated mix;
        ``__init__`` completes or rolls back an interrupted swap.
        """
        if not self._staging_dir.exists():
            self.clear_runs()  # committing an empty grid
            return 0
        committed = len(list(self._staging_dir.glob("*.json")))
        self.runs_dir.rename(self._old_dir)
        self._staging_dir.rename(self.runs_dir)
        shutil.rmtree(self._old_dir)
        return committed

    def discard_staged(self) -> int:
        """Drop any staged records (failed campaign, or leftovers from an
        interrupted process); returns how many were removed."""
        if not self._staging_dir.exists():
            return 0
        stale = list(self._staging_dir.glob("*.json"))
        for path in stale:
            path.unlink()
        self._staging_dir.rmdir()
        return len(stale)

    def clear_runs(self) -> int:
        """Delete all persisted run records (fresh campaign into a reused
        directory); returns how many were removed."""
        stale = list(self.runs_dir.glob("*.json"))
        for path in stale:
            path.unlink()
        return len(stale)

    def save_run(self, run_id: str, record: dict[str, Any]) -> Path:
        path = self.runs_dir / f"{run_id}.json"
        path.write_text(json.dumps(record, indent=2, sort_keys=True))
        return path

    def load_run(self, run_id: str) -> dict[str, Any]:
        return json.loads((self.runs_dir / f"{run_id}.json").read_text())

    def load_runs(self) -> list[dict[str, Any]]:
        return [json.loads(path.read_text())
                for path in sorted(self.runs_dir.glob("*.json"))]

    def save_summary(self, summary: dict[str, Any]) -> Path:
        path = self.root / "campaign.json"
        path.write_text(json.dumps(summary, indent=2, sort_keys=True))
        return path

    def load_summary(self) -> dict[str, Any]:
        return json.loads((self.root / "campaign.json").read_text())
