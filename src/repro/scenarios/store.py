"""JSON persistence for campaign results.

Layout under the store root::

    <root>/
      campaign.json            # campaign-level manifest + summary
      runs/
        <run_id>.json          # one record per run: spec + metrics

Each run record carries the full scenario spec (including the seed), so
any run can be reproduced later from its JSON alone.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any


class ResultsStore:
    """Directory-backed store of per-run records and a campaign summary."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.runs_dir = self.root / "runs"
        self.runs_dir.mkdir(parents=True, exist_ok=True)

    def clear_runs(self) -> int:
        """Delete all persisted run records (fresh campaign into a reused
        directory); returns how many were removed."""
        stale = list(self.runs_dir.glob("*.json"))
        for path in stale:
            path.unlink()
        return len(stale)

    def save_run(self, run_id: str, record: dict[str, Any]) -> Path:
        path = self.runs_dir / f"{run_id}.json"
        path.write_text(json.dumps(record, indent=2, sort_keys=True))
        return path

    def load_run(self, run_id: str) -> dict[str, Any]:
        return json.loads((self.runs_dir / f"{run_id}.json").read_text())

    def load_runs(self) -> list[dict[str, Any]]:
        return [json.loads(path.read_text())
                for path in sorted(self.runs_dir.glob("*.json"))]

    def save_summary(self, summary: dict[str, Any]) -> Path:
        path = self.root / "campaign.json"
        path.write_text(json.dumps(summary, indent=2, sort_keys=True))
        return path

    def load_summary(self) -> dict[str, Any]:
        return json.loads((self.root / "campaign.json").read_text())
