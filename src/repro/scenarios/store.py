"""JSON persistence for campaign results.

Layout under the store root::

    <root>/
      campaign.json            # campaign-level manifest + summary
      metrics.jsonl            # per-run telemetry deltas (obs-on runs)
      runs/
        <run_id>.json          # one record per run: spec + metrics
      runs.staging/            # in-flight campaign being streamed

Each run record carries the full scenario spec (including the seed), so
any run can be reproduced later from its JSON alone.

A streaming campaign writes each record into ``runs.staging/`` as it
arrives and *commits* the staged set over ``runs/`` only once the whole
grid finished -- a failed or interrupted campaign leaves the previously
persisted campaign (runs + summary) fully intact.  The commit itself is
a directory-rename swap through ``runs.old/`` (recovered on open), so
even a crash mid-commit leaves one whole campaign's records, never a
mix; only the window between the swap and ``save_summary`` can pair new
runs with the previous summary.

Crash- and commit-race hardening:

- each staged record is written to a ``*.json.tmp`` sibling and
  ``os.replace``-d into place, so a process killed mid-``stage_run``
  never leaves a torn half-record for the commit to promote;
- the commit swap itself runs under :class:`CommitLock`, a kernel
  ``flock`` on a persistent lock file (auto-released if the holder
  dies, so it cannot go stale), so two concurrent committers
  serialize instead of racing the two renames into a corrupt or
  half-lost ``runs/``.

The *staging* phase is still one campaign per root at a time: runners
call ``discard_staged()`` before streaming, so two campaigns writing
the same root concurrently will clobber each other's staged records
(by design -- a root describes one campaign).  The lock only removes
the failure mode where the racing *commits* corrupt the previously
committed set.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from pathlib import Path
from typing import Any


class CommitLock:
    """An exclusive advisory lock guarding the commit swap.

    Implemented with ``flock(2)`` on a persistent ``.commit.lock``
    file: the kernel releases the lock the instant its holder exits
    for *any* reason (including SIGKILL mid-commit), so there is no
    stale-lock state to detect and no lock file to break or delete --
    the unlink/recreate TOCTOU races of pid-file protocols simply
    cannot occur.  The holder's pid is written into the file purely as
    a diagnostic; the file itself is never removed.

    Two threads of one process contend correctly too (each acquisition
    opens its own file descriptor, and ``flock`` locks are per open
    file description).  A live holder makes a second committer poll
    until ``timeout`` and then fail loudly rather than corrupt the
    store.
    """

    def __init__(self, path: Path, timeout: float = 10.0,
                 poll: float = 0.05) -> None:
        self.path = path
        self.timeout = timeout
        self.poll = poll
        self._fd: int | None = None

    def __enter__(self) -> "CommitLock":
        import fcntl

        fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                break
            except BlockingIOError:
                # Held by someone else; anything other than EWOULDBLOCK
                # (e.g. ENOTSUP on an odd mount) propagates immediately
                # rather than spinning into a misleading timeout.
                if time.monotonic() >= deadline:
                    os.close(fd)
                    raise TimeoutError(
                        f"commit lock {self.path} held by a live "
                        f"process for over {self.timeout}s") from None
                time.sleep(self.poll)
            except OSError:
                os.close(fd)
                raise
        try:
            os.ftruncate(fd, 0)
            os.write(fd, str(os.getpid()).encode())
        except OSError:
            pass  # the pid note is best-effort diagnostics
        self._fd = fd
        return self

    def __exit__(self, *exc_info) -> None:
        import fcntl

        fd, self._fd = self._fd, None
        if fd is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:
                pass
            os.close(fd)


class ResultsStore:
    """Directory-backed store of per-run records and a campaign summary."""

    def __init__(self, root: str | Path,
                 lock_timeout: float = 10.0) -> None:
        self.root = Path(root)
        self.runs_dir = self.root / "runs"
        self._staging_dir = self.root / "runs.staging"
        self._old_dir = self.root / "runs.old"
        self._lock_path = self.root / ".commit.lock"
        self._lock_timeout = lock_timeout
        # Recover from a commit interrupted between its two renames:
        # runs/ missing with runs.old/ present means the previous
        # campaign was parked but the staged one never swapped in --
        # roll back.  Both present means the swap finished and only the
        # cleanup was lost -- finish it.  The check-and-repair runs
        # under the commit lock: another process may be *inside* its
        # commit swap right now, and its parked runs.old/ must not be
        # "recovered" out from under it.
        self.root.mkdir(parents=True, exist_ok=True)
        if self._old_dir.exists() or not self.runs_dir.exists():
            # Possible interrupted swap -- but runs.old/ also exists
            # transiently *inside* a healthy commit, so take the lock
            # and re-check before repairing anything.  The common case
            # (intact store) never touches the lock.
            with self.commit_lock():
                if self._old_dir.exists():
                    if not self.runs_dir.exists():
                        self._old_dir.rename(self.runs_dir)
                    else:
                        shutil.rmtree(self._old_dir)
                self.runs_dir.mkdir(parents=True, exist_ok=True)

    def begin_staging(self) -> None:
        """Open the staging area explicitly.  Runners call this before
        streaming a (possibly empty) grid: an existing-but-empty staged
        set commits as an empty campaign, whereas a *missing* staging
        directory makes :meth:`commit_staged` a no-op -- the difference
        between "this campaign produced nothing" and "someone else
        already promoted my staged set"."""
        self._staging_dir.mkdir(parents=True, exist_ok=True)

    def stage_run(self, run_id: str, record: dict[str, Any]) -> Path:
        """Stream one record into the staging area (see module docs).

        The write lands in a ``.json.tmp`` sibling first and is renamed
        into place, so a crash mid-write leaves no torn ``.json`` for
        :meth:`commit_staged` to promote.
        """
        self._staging_dir.mkdir(parents=True, exist_ok=True)
        path = self._staging_dir / f"{run_id}.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(record, indent=2, sort_keys=True))
        os.replace(tmp, path)
        return path

    def commit_lock(self) -> CommitLock:
        return CommitLock(self._lock_path, timeout=self._lock_timeout)

    def commit_staged(self) -> int:
        """Promote the staged campaign: the previous run records are
        dropped and every staged record moves into ``runs/``.  Returns
        the number of committed records.

        The swap is two directory renames (park ``runs/``, promote
        ``runs.staging/``), so a crash at any point leaves either the
        old or the new campaign whole -- never a half-populated mix;
        ``__init__`` completes or rolls back an interrupted swap.  The
        whole sequence holds :class:`CommitLock`, so two concurrent
        committers serialize: the loser either promotes its own staged
        set afterwards or, finding nothing staged, leaves the winner's
        commit untouched.
        """
        with self.commit_lock():
            if not self._staging_dir.exists():
                return 0  # nothing staged (e.g. the losing committer)
            for leftover in self._staging_dir.glob("*.json.tmp"):
                leftover.unlink()  # torn writes never get promoted
            committed = len(list(self._staging_dir.glob("*.json")))
            if self._old_dir.exists():
                shutil.rmtree(self._old_dir)
            self.runs_dir.rename(self._old_dir)
            self._staging_dir.rename(self.runs_dir)
            shutil.rmtree(self._old_dir)
        return committed

    def discard_staged(self) -> int:
        """Drop any staged records (failed campaign, or leftovers from an
        interrupted process, including torn ``.json.tmp`` writes);
        returns how many records were removed."""
        if not self._staging_dir.exists():
            return 0
        stale = list(self._staging_dir.glob("*.json"))
        shutil.rmtree(self._staging_dir)
        return len(stale)

    def clear_runs(self) -> int:
        """Delete all persisted run records (fresh campaign into a reused
        directory); returns how many were removed."""
        stale = list(self.runs_dir.glob("*.json"))
        for path in stale:
            path.unlink()
        return len(stale)

    def save_run(self, run_id: str, record: dict[str, Any]) -> Path:
        path = self.runs_dir / f"{run_id}.json"
        path.write_text(json.dumps(record, indent=2, sort_keys=True))
        return path

    def load_run(self, run_id: str) -> dict[str, Any]:
        return json.loads((self.runs_dir / f"{run_id}.json").read_text())

    def load_runs(self) -> list[dict[str, Any]]:
        return [json.loads(path.read_text())
                for path in sorted(self.runs_dir.glob("*.json"))]

    def save_metrics_jsonl(self, rows: list[dict[str, Any]]) -> Path:
        """Persist per-run telemetry snapshots (``repro.obs`` deltas) as
        ``metrics.jsonl``: one JSON object per line, submission order.

        The side channel follows the wholesale-replacement rule of the
        record set: an empty ``rows`` *removes* a stale file (a reused
        root must never pair a new campaign's records with an old
        campaign's telemetry).  Written via tmp + ``os.replace`` so a
        crash never leaves a torn file; ``runs/``-globbing readers are
        unaffected (the file lives at the store root).
        """
        path = self.root / "metrics.jsonl"
        if not rows:
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            return path
        tmp = path.with_suffix(".jsonl.tmp")
        tmp.write_text("".join(json.dumps(row, sort_keys=True) + "\n"
                               for row in rows))
        os.replace(tmp, path)
        return path

    def load_metrics_jsonl(self) -> list[dict[str, Any]]:
        """The per-run telemetry rows, or ``[]`` when none were saved."""
        rows, _skipped = self.load_metrics_jsonl_counted()
        return rows

    def load_metrics_jsonl_counted(self) -> tuple[list[dict[str, Any]], int]:
        """Like :meth:`load_metrics_jsonl`, plus how many malformed
        lines were skipped.

        The side channel itself is written atomically, but a file
        copied or truncated mid-write (crash during a backup, a torn
        ``rsync``) can carry a torn trailing line; readers skip and
        count such lines instead of raising, and the warehouse ingester
        surfaces the count so silent telemetry loss stays visible.
        """
        path = self.root / "metrics.jsonl"
        if not path.exists():
            return [], 0
        rows: list[dict[str, Any]] = []
        skipped = 0
        for line in path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError:
                skipped += 1
        return rows, skipped

    def save_summary(self, summary: dict[str, Any]) -> Path:
        path = self.root / "campaign.json"
        path.write_text(json.dumps(summary, indent=2, sort_keys=True))
        return path

    def load_summary(self) -> dict[str, Any]:
        return json.loads((self.root / "campaign.json").read_text())
