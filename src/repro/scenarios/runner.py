"""Scenario execution and parallel campaign sweeps.

:func:`run_scenario` executes one :class:`~repro.scenarios.spec.Scenario`
on a fresh HIL rig and returns its :class:`~repro.scenarios.metrics.RunMetrics`.
:class:`CampaignRunner` fans a list of scenarios (typically a
``sweep(...)`` grid) out across worker processes, persists one JSON record
per run into a :class:`~repro.scenarios.store.ResultsStore`, and
aggregates per-scenario summary statistics.

Scenarios are self-contained picklable values, so the pool workers need no
shared state: each rebuilds its rig from the spec and the recorded seed,
which is also why any stored run can be reproduced bit-identically later.

Throughput mechanics for large (100+-scenario) grids:

- the worker pool is **persistent**: lazily spawned on the first parallel
  ``run()`` and reused by every subsequent one (``close()`` or use the
  runner as a context manager to reap it), so back-to-back sweeps stop
  paying process-spawn cost per call;
- submission is **chunked** (``chunksize``), batching the per-task pickle
  round trips ``Executor.map`` would otherwise pay one job at a time;
- result records **stream**: each record is written to the results
  store's staging area as it arrives from its worker (instead of
  buffering the whole campaign in memory before the first byte hits
  disk) and the staged set is committed over the previous campaign only
  when the grid finishes -- a failed or interrupted campaign leaves the
  previously persisted one intact.  Record order stays deterministic
  (``map`` preserves submission order), so summaries and goldens are
  unchanged.
"""

from __future__ import annotations

import os
import re
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

import repro.obs as obs_mod
from repro.obs import instrument
from repro.scenarios.metrics import RunMetrics, collect
from repro.scenarios.spec import Scenario
from repro.sim.clock import SEC


def run_scenario(scenario: Scenario) -> RunMetrics:
    """Build a rig from ``scenario``, run it to its horizon, collect
    metrics.  Deterministic in (scenario, seed)."""
    from repro.experiments.hil import HilRig

    rig = HilRig(scenario=scenario)
    times_sec: list[float] = []
    levels_pct: list[float] = []
    setpoints_pct: list[float] = []

    def sample() -> None:
        times_sec.append(rig.engine.now / SEC)
        levels_pct.append(rig.read("lts_level_pct"))
        setpoints_pct.append(rig.commanded_setpoint())
        if rig.engine.now < int(scenario.duration_sec * SEC):
            rig.engine.post(int(scenario.sample_period_sec * SEC),
                            sample)

    rig.engine.post(int(scenario.sample_period_sec * SEC), sample)
    rig.run_for_seconds(scenario.duration_sec)
    return collect(rig, scenario, times_sec, levels_pct, setpoints_pct)


def _run_record(indexed: tuple[str, Scenario]) -> dict[str, Any]:
    """Pool worker: one run -> one JSON-ready record.

    With telemetry enabled (``REPRO_OBS=1`` reaches pool children via
    the environment) the record carries a transient ``"obs"`` key: the
    delta of this process's registry across the run.  Runners POP that
    key before records are staged or summarized -- it is routed to the
    store's ``metrics.jsonl`` side channel so the record stream (and
    every golden digest over it) stays byte-identical to obs-off runs.
    """
    run_id, scenario = indexed
    meters = instrument.campaign_meters()
    if meters is None:
        metrics = run_scenario(scenario)
        return {"run_id": run_id, "scenario": scenario.to_dict(),
                "metrics": metrics.to_dict()}
    registry = obs_mod.get_registry()
    before = registry.values()
    start = time.perf_counter()
    try:
        metrics = run_scenario(scenario)
    except BaseException:
        meters.runs_failed.inc()
        raise
    meters.runs.inc()
    meters.run_seconds.observe(time.perf_counter() - start)
    return {"run_id": run_id, "scenario": scenario.to_dict(),
            "metrics": metrics.to_dict(),
            "obs": obs_mod.delta_values(before, registry.values())}


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.=-]+", "-", name)


def _reap_pool(pool: ProcessPoolExecutor) -> None:
    """Finalizer target (module-level so the runner itself stays
    collectable): shut the abandoned pool down without blocking GC."""
    pool.shutdown(wait=False)


@dataclass
class CampaignResult:
    """Everything a finished campaign produced.

    ``failed`` is only populated by runners that can lose individual
    jobs without aborting the campaign (the distributed runner's
    bounded-retry path); the local pool either completes a grid or
    raises.
    """

    records: list[dict[str, Any]] = field(default_factory=list)
    summary: dict[str, Any] = field(default_factory=dict)
    store_root: str | None = None
    failed: list[dict[str, Any]] = field(default_factory=list)

    def metrics(self) -> list[dict[str, Any]]:
        return [record["metrics"] for record in self.records]


class CampaignRunner:
    """Fan a scenario grid out across processes and aggregate results.

    ``max_workers=None`` uses the machine's CPU count; ``parallel=False``
    (or a single worker) runs the grid serially in-process, which is also
    the baseline the throughput benchmark compares against.
    ``chunksize=None`` picks ~4 chunks per worker, a reasonable balance
    between pickle batching and tail latency; pass an explicit value to
    override.

    ``warehouse=`` (a ``repro.warehouse`` directory path or open
    :class:`~repro.warehouse.Warehouse`) opts into streaming ingestion:
    each campaign is ingested into the warehouse right after its store
    commit, under this runner's ``tenant`` and the store directory's
    name as the campaign key.  It requires ``results_dir`` (the
    warehouse ingests committed stores, not in-memory results).
    """

    def __init__(self, results_dir: str | None = None,
                 max_workers: int | None = None,
                 parallel: bool = True,
                 chunksize: int | None = None,
                 warehouse: Any = None,
                 tenant: str = "default") -> None:
        self.results_dir = results_dir
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self.parallel = parallel and self.max_workers > 1
        self.chunksize = chunksize
        self.warehouse = warehouse
        self.tenant = tenant
        if warehouse is not None and results_dir is None:
            raise ValueError("warehouse= requires results_dir= (the "
                             "warehouse ingests committed stores)")
        self._pool: ProcessPoolExecutor | None = None
        self._pool_finalizer: weakref.finalize | None = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _executor(self) -> ProcessPoolExecutor:
        """The persistent pool, spawned on first use and reused across
        ``run()`` calls until :meth:`close`.  A finalizer backstops
        callers that drop the runner without closing it: the workers are
        reaped when the runner is garbage-collected instead of
        accumulating until interpreter exit."""
        if self._pool is not None and getattr(self._pool, "_broken", False):
            # A worker died abnormally (OOM-kill, segfault): the executor
            # is permanently broken, so reap it and respawn -- the runner
            # recovers on the next run() like the per-run pool did.
            self.close()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            self._pool_finalizer = weakref.finalize(
                self, _reap_pool, self._pool)
        return self._pool

    def close(self) -> None:
        """Reap the worker pool (idempotent).  The runner stays usable --
        the next parallel ``run()`` spawns a fresh pool."""
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _chunksize_for(self, n_jobs: int) -> int:
        if self.chunksize is not None:
            return max(1, self.chunksize)
        return max(1, n_jobs // (self.max_workers * 4))

    def map_jobs(self, fn, jobs: Sequence[Any],
                 on_result=None) -> list[Any]:
        """Fan arbitrary picklable jobs across the persistent pool.

        The generic face of the runner: ``fn`` must be a module-level
        callable and each job a picklable value (the wide-grid campaign
        drivers use this to share the scenario subsystem's pool,
        chunking and respawn machinery).  Results preserve job order;
        serial runners map in-process.

        ``on_result(index, result)`` is an optional progress callback
        fired once per completed job.  The local pool fires it in job
        order (``map`` preserves submission order); the distributed
        runner, which shares this signature, fires it in completion
        order -- treat the index, not the call order, as the identity.
        """
        if not self.parallel:
            stream = map(fn, jobs)
        else:
            stream = self._executor().map(
                fn, jobs, chunksize=self._chunksize_for(len(jobs)))
        if on_result is None:
            return list(stream)
        results = []
        for index, result in enumerate(stream):
            results.append(result)
            on_result(index, result)
        return results

    def run(self, scenarios: Sequence[Scenario],
            on_result=None) -> CampaignResult:
        jobs = [(f"{i:03d}_{_slug(s.name)}_s{s.seed}", s)
                for i, s in enumerate(scenarios)]
        store = None
        if self.results_dir is not None:
            from repro.scenarios.store import ResultsStore

            store = ResultsStore(self.results_dir)
            # Leftovers from an interrupted earlier process must not mix
            # into this campaign's staged set.
            store.discard_staged()
            store.begin_staging()
        if self.parallel:
            stream = self._executor().map(
                _run_record, jobs, chunksize=self._chunksize_for(len(jobs)))
        else:
            stream = map(_run_record, jobs)
        records = []
        obs_rows: list[dict[str, Any]] = []
        try:
            for record in stream:  # ordered: map preserves submission order
                # Telemetry deltas ride a transient key (see _run_record):
                # strip them before the record is staged, summarized or
                # digested, so obs-on records equal obs-off records.
                obs_row = record.pop("obs", None)
                if obs_row is not None:
                    obs_rows.append({"run_id": record["run_id"],
                                     "metrics": obs_row})
                records.append(record)
                if store is not None:
                    store.stage_run(record["run_id"], record)
                if on_result is not None:
                    on_result(record)
        except BaseException:
            # The previously persisted campaign stays untouched.
            if store is not None:
                store.discard_staged()
            raise
        result = CampaignResult(records=records,
                                summary=summarize(records))
        if store is not None:
            # Commit replaces the previous campaign wholesale: a reused
            # directory must describe only THIS campaign, or stale
            # records from a previous (larger) grid would silently mix
            # into load_runs().
            store.commit_staged()
            store.save_summary(result.summary)
            # Same wholesale rule for the telemetry side channel: an
            # empty row set removes a stale metrics.jsonl.
            store.save_metrics_jsonl(obs_rows)
            result.store_root = str(store.root)
            if self.warehouse is not None:
                _ingest_committed(self.warehouse, store.root, self.tenant)
        return result


def _ingest_committed(warehouse: Any, store_root, tenant: str) -> None:
    """Stream a just-committed store into the opt-in warehouse target
    (shared by the local and distributed runners)."""
    from repro.warehouse import ingest_store

    ingest_store(warehouse, store_root, tenant=tenant)


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
_AGGREGATED = ("failover_latency_sec", "detection_latency_sec",
               "packet_loss_ratio", "control_cost", "max_excursion_pct",
               "mean_io_latency_ms")


def _stats(values: list[float]) -> dict[str, float] | None:
    if not values:
        return None
    return {"n": len(values), "mean": sum(values) / len(values),
            "min": min(values), "max": max(values)}


def summarize(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Per-scenario aggregate statistics over a campaign's records.

    Failed-run records (the distributed runner commits these with an
    ``error`` key instead of ``metrics``) are excluded from every
    aggregate -- ``total_runs`` counts completed runs only -- but
    surface as ``failed_runs``, and ``trace_dropped`` totals the rows
    bounded Trace rings evicted, so silent data loss is visible at the
    summary level.
    """
    failed = [r for r in records if "error" in r]
    records = [r for r in records if "error" not in r]
    by_scenario: dict[str, list[dict[str, Any]]] = {}
    for record in records:
        by_scenario.setdefault(record["metrics"]["scenario"],
                               []).append(record["metrics"])
    summary: dict[str, Any] = {
        "total_runs": len(records),
        "failed_runs": len(failed),
        "trace_dropped": sum(r["metrics"].get("trace_dropped", 0)
                             for r in records),
        "scenarios": {},
    }
    for name, runs in sorted(by_scenario.items()):
        entry: dict[str, Any] = {
            "runs": len(runs),
            "seeds": sorted(m["seed"] for m in runs),
            "failovers_executed": sum(m["failovers_executed"]
                                      for m in runs),
            "crashes": sum(m["crashes"] for m in runs),
        }
        for key in _AGGREGATED:
            stats = _stats([m[key] for m in runs if m[key] is not None])
            if stats is not None:
                entry[key] = stats
        summary["scenarios"][name] = entry
    return summary


def format_summary_table(summary: dict[str, Any]) -> str:
    """The aggregate failover-latency table campaigns print."""
    header = (f"{'scenario':<42} {'runs':>4} {'failover lat (s)':>18} "
              f"{'detect lat (s)':>16} {'loss':>6} {'cost':>6}")
    lines = [header, "-" * len(header)]
    for name, entry in summary["scenarios"].items():
        def cell(key: str) -> str:
            stats = entry.get(key)
            if stats is None:
                return "--"
            return f"{stats['mean']:.2f}"

        fo = entry.get("failover_latency_sec")
        fo_cell = (f"{fo['mean']:6.2f} [{fo['min']:.2f}..{fo['max']:.2f}]"
                   if fo else "--")
        lines.append(f"{name:<42} {entry['runs']:>4} {fo_cell:>18} "
                     f"{cell('detection_latency_sec'):>16} "
                     f"{cell('packet_loss_ratio'):>6} "
                     f"{cell('control_cost'):>6}")
    return "\n".join(lines)
