"""Scenario execution and parallel campaign sweeps.

:func:`run_scenario` executes one :class:`~repro.scenarios.spec.Scenario`
on a fresh HIL rig and returns its :class:`~repro.scenarios.metrics.RunMetrics`.
:class:`CampaignRunner` fans a list of scenarios (typically a
``sweep(...)`` grid) out across worker processes, persists one JSON record
per run into a :class:`~repro.scenarios.store.ResultsStore`, and
aggregates per-scenario summary statistics.

Scenarios are self-contained picklable values, so the pool workers need no
shared state: each rebuilds its rig from the spec and the recorded seed,
which is also why any stored run can be reproduced bit-identically later.
"""

from __future__ import annotations

import os
import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.scenarios.metrics import RunMetrics, collect
from repro.scenarios.spec import Scenario
from repro.sim.clock import SEC


def run_scenario(scenario: Scenario) -> RunMetrics:
    """Build a rig from ``scenario``, run it to its horizon, collect
    metrics.  Deterministic in (scenario, seed)."""
    from repro.experiments.hil import HilRig

    rig = HilRig(scenario=scenario)
    times_sec: list[float] = []
    levels_pct: list[float] = []
    setpoints_pct: list[float] = []

    def sample() -> None:
        times_sec.append(rig.engine.now / SEC)
        levels_pct.append(rig.read("lts_level_pct"))
        setpoints_pct.append(rig.commanded_setpoint())
        if rig.engine.now < int(scenario.duration_sec * SEC):
            rig.engine.post(int(scenario.sample_period_sec * SEC),
                            sample)

    rig.engine.post(int(scenario.sample_period_sec * SEC), sample)
    rig.run_for_seconds(scenario.duration_sec)
    return collect(rig, scenario, times_sec, levels_pct, setpoints_pct)


def _run_record(indexed: tuple[str, Scenario]) -> dict[str, Any]:
    """Pool worker: one run -> one JSON-ready record."""
    run_id, scenario = indexed
    metrics = run_scenario(scenario)
    return {"run_id": run_id, "scenario": scenario.to_dict(),
            "metrics": metrics.to_dict()}


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.=-]+", "-", name)


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    records: list[dict[str, Any]] = field(default_factory=list)
    summary: dict[str, Any] = field(default_factory=dict)
    store_root: str | None = None

    def metrics(self) -> list[dict[str, Any]]:
        return [record["metrics"] for record in self.records]


class CampaignRunner:
    """Fan a scenario grid out across processes and aggregate results.

    ``max_workers=None`` uses the machine's CPU count; ``parallel=False``
    (or a single worker) runs the grid serially in-process, which is also
    the baseline the throughput benchmark compares against.
    """

    def __init__(self, results_dir: str | None = None,
                 max_workers: int | None = None,
                 parallel: bool = True) -> None:
        self.results_dir = results_dir
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self.parallel = parallel and self.max_workers > 1

    def run(self, scenarios: Sequence[Scenario]) -> CampaignResult:
        jobs = [(f"{i:03d}_{_slug(s.name)}_s{s.seed}", s)
                for i, s in enumerate(scenarios)]
        if self.parallel:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                records = list(pool.map(_run_record, jobs))
        else:
            records = [_run_record(job) for job in jobs]
        result = CampaignResult(records=records,
                                summary=summarize(records))
        if self.results_dir is not None:
            from repro.scenarios.store import ResultsStore

            store = ResultsStore(self.results_dir)
            # A reused directory must describe only THIS campaign:
            # stale records from a previous (larger) grid would silently
            # mix into load_runs() otherwise.
            store.clear_runs()
            for record in records:
                store.save_run(record["run_id"], record)
            store.save_summary(result.summary)
            result.store_root = str(store.root)
        return result


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
_AGGREGATED = ("failover_latency_sec", "detection_latency_sec",
               "packet_loss_ratio", "control_cost", "max_excursion_pct",
               "mean_io_latency_ms")


def _stats(values: list[float]) -> dict[str, float] | None:
    if not values:
        return None
    return {"n": len(values), "mean": sum(values) / len(values),
            "min": min(values), "max": max(values)}


def summarize(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Per-scenario aggregate statistics over a campaign's records."""
    by_scenario: dict[str, list[dict[str, Any]]] = {}
    for record in records:
        by_scenario.setdefault(record["metrics"]["scenario"],
                               []).append(record["metrics"])
    summary: dict[str, Any] = {"total_runs": len(records), "scenarios": {}}
    for name, runs in sorted(by_scenario.items()):
        entry: dict[str, Any] = {
            "runs": len(runs),
            "seeds": sorted(m["seed"] for m in runs),
            "failovers_executed": sum(m["failovers_executed"]
                                      for m in runs),
            "crashes": sum(m["crashes"] for m in runs),
        }
        for key in _AGGREGATED:
            stats = _stats([m[key] for m in runs if m[key] is not None])
            if stats is not None:
                entry[key] = stats
        summary["scenarios"][name] = entry
    return summary


def format_summary_table(summary: dict[str, Any]) -> str:
    """The aggregate failover-latency table campaigns print."""
    header = (f"{'scenario':<42} {'runs':>4} {'failover lat (s)':>18} "
              f"{'detect lat (s)':>16} {'loss':>6} {'cost':>6}")
    lines = [header, "-" * len(header)]
    for name, entry in summary["scenarios"].items():
        def cell(key: str) -> str:
            stats = entry.get(key)
            if stats is None:
                return "--"
            return f"{stats['mean']:.2f}"

        fo = entry.get("failover_latency_sec")
        fo_cell = (f"{fo['mean']:6.2f} [{fo['min']:.2f}..{fo['max']:.2f}]"
                   if fo else "--")
        lines.append(f"{name:<42} {entry['runs']:>4} {fo_cell:>18} "
                     f"{cell('detection_latency_sec'):>16} "
                     f"{cell('packet_loss_ratio'):>6} "
                     f"{cell('control_cost'):>6}")
    return "\n".join(lines)
