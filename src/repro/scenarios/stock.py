"""The stock scenario library.

Named, ready-to-run fault campaigns over the paper's six-node LTS-level
rig.  Each factory returns a fresh :class:`~repro.scenarios.spec.Scenario`
built on fast-failover HIL settings (short arbitration hold-off, 10 s
dormant parking) so sweeps stay cheap; callers retune via
``with_params``/``with_seed`` or the factory's keyword overrides.

Registry access::

    scenario = stock_scenario("primary-crash", seed=7)
    for name in stock_names(): ...
"""

from __future__ import annotations

from typing import Callable

from repro.control.compiler import SLOT_OUTPUT, SLOT_SETPOINT
from repro.experiments.hil import (
    ACTUATOR,
    CTRL_A,
    CTRL_B,
    GATEWAY,
    SENSOR,
    HilConfig,
    TASK_ACT,
    TASK_CTRL,
)
from repro.scenarios.faults import (
    BabblingInterferer,
    BatteryDrain,
    CapsuleRetune,
    CapsuleUpgrade,
    ClockDrift,
    LinkDegrade,
    NodeCrash,
    NodeRecover,
    OutputWedge,
)
from repro.scenarios.spec import Scenario
from repro.sim.clock import SEC


def fast_hil(**overrides) -> HilConfig:
    """HIL settings tuned for quick campaigns (same spirit as the
    integration suite): short settle, immediate arbitration, fast parking."""
    defaults = dict(settle_sec=800.0, arbitration_holdoff_ticks=1,
                    dormant_delay_ticks=10 * SEC)
    defaults.update(overrides)
    return HilConfig(**defaults)


def primary_crash(seed: int = 1, crash_at_sec: float = 20.0,
                  duration_sec: float = 60.0) -> Scenario:
    """Ctrl-A drops dead mid-run; the backup must win arbitration on
    heartbeat silence alone."""
    return Scenario(
        "primary-crash", hil=fast_hil(), seed=seed,
        duration_sec=duration_sec,
        description="hard crash of the active controller",
        tags=("failover", "crash"),
    ).at(crash_at_sec, NodeCrash(CTRL_A))


def wedged_primary(seed: int = 1, fault_at_sec: float = 20.0,
                   duration_sec: float = 60.0,
                   wedge_pct: float = 75.0) -> Scenario:
    """The Fig. 6(b) fault: Ctrl-A keeps talking but publishes garbage;
    shadow-deviation detection must catch it."""
    return Scenario(
        "wedged-primary", hil=fast_hil(), seed=seed,
        duration_sec=duration_sec,
        description="active controller wedges its valve output",
        tags=("failover", "byzantine"),
    ).at(fault_at_sec, OutputWedge(TASK_CTRL, wedge_pct))


def crash_and_recover(seed: int = 1, crash_at_sec: float = 15.0,
                      recover_at_sec: float = 35.0,
                      duration_sec: float = 70.0) -> Scenario:
    """Ctrl-A reboots after a crash: the stale ex-primary must be fenced
    by the operation switch while Ctrl-B keeps the loop."""
    return Scenario(
        "crash-and-recover", hil=fast_hil(), seed=seed,
        duration_sec=duration_sec,
        description="primary crashes, later reboots with stale state",
        tags=("failover", "recovery"),
    ).at(crash_at_sec, NodeCrash(CTRL_A)) \
     .at(recover_at_sec, NodeRecover(CTRL_A))


def network_partition(seed: int = 1, partition_at_sec: float = 20.0,
                      heal_after_sec: float = 20.0,
                      duration_sec: float = 70.0) -> Scenario:
    """Ctrl-A is radio-islanded (all its links go dark) for a window; the
    component must fail over, then tolerate the island rejoining."""
    island_links = tuple((CTRL_A, other)
                         for other in (SENSOR, CTRL_B, ACTUATOR, GATEWAY))
    return Scenario(
        "network-partition", hil=fast_hil(), seed=seed,
        duration_sec=duration_sec,
        description="active controller islanded by total link loss",
        tags=("partition", "failover"),
    ).at(partition_at_sec,
         LinkDegrade(prr=0.0, links=island_links,
                     duration_sec=heal_after_sec))


def cascading_battery_death(seed: int = 1, first_at_sec: float = 15.0,
                            second_at_sec: float = 35.0,
                            duration_sec: float = 60.0) -> Scenario:
    """Both controller replicas brown out in sequence: Ctrl-A dies and
    the backup takes over, then Ctrl-B's cell empties too and the loop is
    left headless -- the sweep measures how far the plant excursion runs
    before operators would have to intervene."""
    return Scenario(
        "cascading-battery-death",
        hil=fast_hil(dormant_delay_ticks=3 * SEC), seed=seed,
        duration_sec=duration_sec,
        description="controller batteries die one after the other",
        tags=("battery", "cascade"),
    ).at(first_at_sec, BatteryDrain(CTRL_A, 1.0)) \
     .at(second_at_sec, BatteryDrain(CTRL_B, 1.0))


def midrun_retooling_under_interference(
        seed: int = 1, duration_sec: float = 120.0,
        new_setpoint: float = 45.0) -> Scenario:
    """The assembly-line-retooling story under hostile conditions: retune
    the setpoint and ship a v2 control law while links run lossy, a
    babbler floods forged actuation frames, and a controller crystal
    drifts."""
    return Scenario(
        "midrun-retooling-under-interference", hil=fast_hil(), seed=seed,
        duration_sec=duration_sec,
        description="parametric retune + OTA upgrade under interference",
        tags=("reprogramming", "interference"),
    ).at(0.0, LinkDegrade(prr=0.9)) \
     .at(5.0, ClockDrift(CTRL_B, drift_ppm=40.0)) \
     .at(10.0, BabblingInterferer(node=CTRL_B, task=TASK_CTRL,
                                  consumer=TASK_ACT, value=99.0,
                                  slot=SLOT_OUTPUT, period_ms=500,
                                  duration_sec=60.0)) \
     .at(20.0, CapsuleRetune(TASK_CTRL, SLOT_SETPOINT, new_setpoint,
                             from_node=GATEWAY)) \
     .at(40.0, CapsuleUpgrade(version=2, from_node=GATEWAY))


def lossy_links(seed: int = 1, prr: float = 0.9,
                duration_sec: float = 60.0) -> Scenario:
    """Plant-floor multipath: every link drops frames i.i.d. at 1-prr."""
    return Scenario(
        "lossy-links", hil=fast_hil(), seed=seed,
        duration_sec=duration_sec,
        description=f"uniform link degradation to PRR {prr}",
        tags=("channel",),
    ).at(0.0, LinkDegrade(prr=prr))


STOCK: dict[str, Callable[..., Scenario]] = {
    "primary-crash": primary_crash,
    "wedged-primary": wedged_primary,
    "crash-and-recover": crash_and_recover,
    "network-partition": network_partition,
    "cascading-battery-death": cascading_battery_death,
    "midrun-retooling-under-interference":
        midrun_retooling_under_interference,
    "lossy-links": lossy_links,
}


def stock_names() -> list[str]:
    return sorted(STOCK)


def stock_scenario(name: str, **kwargs) -> Scenario:
    """Instantiate a stock scenario by registry name."""
    if name not in STOCK:
        raise KeyError(f"unknown stock scenario {name!r}; "
                       f"available: {stock_names()}")
    return STOCK[name](**kwargs)
