"""Per-run metrics extracted from a finished scenario run.

Everything here is a pure function of the rig's deterministic end state
(trace, stats counters, sampled series), so a scenario replayed with the
same seed yields a bit-identical :class:`RunMetrics` -- the property the
campaign store's reproduce-from-seed contract rests on.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any

from repro.experiments.metrics import mean
from repro.scenarios.spec import Scenario
from repro.sim.clock import MS, SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.hil import HilRig


@dataclass(frozen=True)
class RunMetrics:
    """The quantities campaigns aggregate across runs."""

    scenario: str
    seed: int
    duration_sec: float
    fault_times_sec: list[float]
    # Robustness timeline
    detection_time_sec: float | None
    failover_time_sec: float | None
    detection_latency_sec: float | None
    failover_latency_sec: float | None
    failovers_executed: int
    failovers_failed: int
    crashes: int
    active_controller_final: str
    # Network health
    frames_sent: int
    frames_delivered: int
    packet_loss_ratio: float
    collisions: int
    rejected_by_switch: int
    # Control quality
    control_cost: float
    max_excursion_pct: float
    min_level_pct: float
    final_level_pct: float
    mean_io_latency_ms: float
    # Data integrity: rows evicted by a bounded Trace ring during the
    # run.  Non-zero means trace-derived metrics above may undercount.
    trace_dropped: int = 0

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


def collect(rig: "HilRig", scenario: Scenario,
            times_sec: list[float], levels_pct: list[float],
            setpoints_pct: list[float] | None = None) -> RunMetrics:
    """Extract a :class:`RunMetrics` from a rig that just finished a run.

    ``setpoints_pct`` is the per-sample *commanded* setpoint series, so a
    run that retunes the setpoint mid-flight (``CapsuleRetune``) scores
    its control quality against what was asked for at each instant; when
    omitted, the plant loop's static setpoint is used for every sample.
    """
    trace = rig.trace
    setpoint = rig.loop.config.setpoint
    fault_times = (rig.injector.applied_times_sec()
                   if rig.injector is not None else [])

    def first_event_sec(category: str) -> float | None:
        matches = [e for e in trace.events(category)
                   if e.category == category]
        return matches[0].time / SEC if matches else None

    detection = first_event_sec("evm.fault_detected")
    failover = first_event_sec("evm.failover")

    def latency(event_sec: float | None) -> float | None:
        """Latency from the most recent fault at or before the event --
        in a multi-fault scenario (e.g. lossy links from t=0, wedge at
        t=20) the response is attributed to the fault that tripped it,
        not the scenario's first perturbation.  An event that precedes
        every fault is spurious and excluded (None), not counted as a
        perfect 0.0."""
        if event_sec is None:
            return None
        prior = [t for t in fault_times if t <= event_sec]
        if not prior:
            return None
        return event_sec - max(prior)

    if setpoints_pct is None:
        setpoints_pct = [setpoint] * len(levels_pct)
    errors = [abs(level - sp)
              for level, sp in zip(levels_pct, setpoints_pct)]
    medium = rig.medium.stats
    # Receiver-side accounting: one sent frame can reach several listeners,
    # so the loss ratio is lost-or-collided receptions over all receptions
    # that were physically possible (sleeping radios excluded -- TDMA
    # sleeps on purpose).
    lost = medium.channel_losses + medium.collisions
    attempts = medium.frames_delivered + lost
    loss_ratio = lost / attempts if attempts else 0.0
    return RunMetrics(
        scenario=scenario.name,
        seed=scenario.seed,
        duration_sec=scenario.duration_sec,
        fault_times_sec=fault_times,
        detection_time_sec=detection,
        failover_time_sec=failover,
        detection_latency_sec=latency(detection),
        failover_latency_sec=latency(failover),
        failovers_executed=sum(r.stats.failovers_executed
                               for r in rig.runtimes.values()),
        failovers_failed=trace.count("evm.failover_failed"),
        crashes=trace.count("rtos.crash"),
        active_controller_final=rig.active_controller(),
        frames_sent=medium.frames_sent,
        frames_delivered=medium.frames_delivered,
        packet_loss_ratio=loss_ratio,
        collisions=medium.collisions,
        rejected_by_switch=sum(r.stats.rejected_by_switch
                               for r in rig.runtimes.values()),
        control_cost=mean(errors),
        max_excursion_pct=max(errors, default=0.0),
        min_level_pct=min(levels_pct, default=0.0),
        final_level_pct=levels_pct[-1] if levels_pct else 0.0,
        mean_io_latency_ms=mean([lat / MS for lat in rig.io_latencies]),
        trace_dropped=trace.dropped,
    )
