"""Scenario & fault-injection campaigns.

The robustness claims of the paper are exercised here as *data*, not
hand-written test scripts: a :class:`Scenario` declares a rig
configuration, a seed, and a timed schedule of composable fault
primitives; the :class:`FaultInjector` fires them as discrete-event
callbacks against the live stack; and the :class:`CampaignRunner` sweeps
scenario x seed x parameter grids across worker processes into a JSON
results store with per-scenario aggregate statistics.
"""

from repro.scenarios.faults import (
    BabblingInterferer,
    BatteryDrain,
    CapsuleRetune,
    CapsuleUpgrade,
    ClockDrift,
    Fault,
    LinkDegrade,
    NodeCrash,
    NodeRecover,
    OutputWedge,
)
from repro.scenarios.injector import FaultInjector
from repro.scenarios.metrics import RunMetrics, collect
from repro.scenarios.runner import (
    CampaignResult,
    CampaignRunner,
    format_summary_table,
    run_scenario,
    summarize,
)
from repro.scenarios.spec import Scenario, ScheduledFault, sweep
from repro.scenarios.store import ResultsStore
from repro.scenarios.stock import stock_names, stock_scenario

__all__ = [
    "BabblingInterferer",
    "BatteryDrain",
    "CampaignResult",
    "CampaignRunner",
    "CapsuleRetune",
    "CapsuleUpgrade",
    "ClockDrift",
    "Fault",
    "FaultInjector",
    "LinkDegrade",
    "NodeCrash",
    "NodeRecover",
    "OutputWedge",
    "ResultsStore",
    "RunMetrics",
    "Scenario",
    "ScheduledFault",
    "collect",
    "format_summary_table",
    "run_scenario",
    "stock_names",
    "stock_scenario",
    "summarize",
    "sweep",
]
